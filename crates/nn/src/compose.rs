//! Composite layers: sequential stacks, residual blocks, squeeze-excite.

use crate::layer::{Layer, Mode, ParamSlot, StateSlot};
use crate::layers::{Linear, ReLU, Sigmoid};
use rand::Rng;
use usb_tensor::{pool, Dtype, Tape, Tensor, Workspace};

/// An ordered stack of layers applied one after another.
///
/// `Sequential` is itself a [`Layer`], so stacks nest arbitrarily (residual
/// branches, MBConv blocks, whole networks).
#[derive(Default, Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for chaining.
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of direct sub-layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty (acts as the identity).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.input_backward(&cur);
        }
        cur
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        // Each intermediate activation goes back into the workspace as soon
        // as the next layer has consumed it, so a warm workspace runs the
        // whole stack without touching the allocator.
        let mut cur: Option<Tensor> = None;
        for layer in &self.layers {
            let next = layer.infer(cur.as_ref().unwrap_or(x), ws);
            if let Some(prev) = cur.take() {
                ws.recycle(prev);
            }
            cur = Some(next);
        }
        cur.unwrap_or_else(|| {
            // Empty stack: the identity, as in `forward`.
            let mut out = ws.take_dirty(x.len());
            out.copy_from_slice(x.data());
            Tensor::from_vec(out, x.shape())
        })
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // Same intermediate-recycling walk as `infer`; each sub-layer
        // pushes its own frames in stack order.
        let mut cur: Option<Tensor> = None;
        for layer in &self.layers {
            let next = layer.infer_recording(cur.as_ref().unwrap_or(x), tape, ws);
            if let Some(prev) = cur.take() {
                ws.recycle(prev);
            }
            cur = Some(next);
        }
        cur.unwrap_or_else(|| {
            let mut out = ws.take_dirty(x.len());
            out.copy_from_slice(x.data());
            Tensor::from_vec(out, x.shape())
        })
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // Reverse walk pops each sub-layer's frames in exactly the reverse
        // of the recording order — strict stack discipline.
        let mut cur: Option<Tensor> = None;
        for layer in self.layers.iter().rev() {
            let next = layer.grad(cur.as_ref().unwrap_or(grad_out), tape, ws);
            if let Some(prev) = cur.take() {
                ws.recycle(prev);
            }
            cur = Some(next);
        }
        cur.unwrap_or_else(|| {
            // Empty stack: the identity, as in `input_backward`.
            let mut out = ws.take_dirty(grad_out.len());
            out.copy_from_slice(grad_out.data());
            Tensor::from_vec(out, grad_out.shape())
        })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_state(f);
        }
    }

    fn visit_state_q(&mut self, f: &mut dyn FnMut(&'static str, StateSlot<'_>)) {
        for layer in &mut self.layers {
            layer.visit_state_q(f);
        }
    }

    fn quantize_weights(&mut self, dtype: Dtype) {
        for layer in &mut self.layers {
            layer.quantize_weights(dtype);
        }
    }
}

/// A residual block `y = main(x) + shortcut(x)`.
///
/// When `shortcut` is empty it acts as the identity skip connection; a
/// non-empty shortcut (1x1 strided conv + batch-norm) handles dimension
/// changes, exactly as in ResNet.
#[derive(Clone)]
pub struct Residual {
    main: Sequential,
    shortcut: Sequential,
}

impl Residual {
    /// Creates a residual block with an identity skip.
    pub fn new(main: Sequential) -> Self {
        Residual {
            main,
            shortcut: Sequential::new(),
        }
    }

    /// Creates a residual block with a projection shortcut.
    pub fn with_shortcut(main: Sequential, shortcut: Sequential) -> Self {
        Residual { main, shortcut }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let main = self.main.forward(x, mode);
        let skip = if self.shortcut.is_empty() {
            x.clone()
        } else {
            self.shortcut.forward(x, mode)
        };
        assert_eq!(
            main.shape(),
            skip.shape(),
            "Residual: branch shapes {:?} vs {:?} — use a projection shortcut",
            main.shape(),
            skip.shape()
        );
        main.add(&skip)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_main = self.main.backward(grad_out);
        let g_skip = if self.shortcut.is_empty() {
            grad_out.clone()
        } else {
            self.shortcut.backward(grad_out)
        };
        g_main.add(&g_skip)
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_main = self.main.input_backward(grad_out);
        let g_skip = if self.shortcut.is_empty() {
            grad_out.clone()
        } else {
            self.shortcut.input_backward(grad_out)
        };
        g_main.add(&g_skip)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut main = self.main.infer(x, ws);
        // Accumulate the skip branch into the main buffer: elementwise
        // `a + b` exactly as `forward`'s `main.add(&skip)`.
        if self.shortcut.is_empty() {
            assert_eq!(
                main.shape(),
                x.shape(),
                "Residual: branch shapes {:?} vs {:?} — use a projection shortcut",
                main.shape(),
                x.shape()
            );
            main.add_assign(x);
        } else {
            let skip = self.shortcut.infer(x, ws);
            assert_eq!(
                main.shape(),
                skip.shape(),
                "Residual: branch shapes {:?} vs {:?} — use a projection shortcut",
                main.shape(),
                skip.shape()
            );
            main.add_assign(&skip);
            ws.recycle(skip);
        }
        main
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // Record main first, then shortcut — the same branch order as
        // `infer`, so `grad` pops shortcut frames first.
        let mut main = self.main.infer_recording(x, tape, ws);
        if self.shortcut.is_empty() {
            assert_eq!(
                main.shape(),
                x.shape(),
                "Residual: branch shapes {:?} vs {:?} — use a projection shortcut",
                main.shape(),
                x.shape()
            );
            main.add_assign(x);
        } else {
            let skip = self.shortcut.infer_recording(x, tape, ws);
            assert_eq!(
                main.shape(),
                skip.shape(),
                "Residual: branch shapes {:?} vs {:?} — use a projection shortcut",
                main.shape(),
                skip.shape()
            );
            main.add_assign(&skip);
            ws.recycle(skip);
        }
        main
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // The shortcut recorded last, so its frames pop first. The two
        // branch gradients are independent functions of `grad_out`, and the
        // final sum is `main + skip` exactly as in `input_backward`, so the
        // reordered evaluation is bit-identical.
        if self.shortcut.is_empty() {
            let mut g_main = self.main.grad(grad_out, tape, ws);
            g_main.add_assign(grad_out);
            g_main
        } else {
            let g_skip = self.shortcut.grad(grad_out, tape, ws);
            let mut g_main = self.main.grad(grad_out, tape, ws);
            g_main.add_assign(&g_skip);
            ws.recycle(g_skip);
            g_main
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        self.main.visit_params(f);
        self.shortcut.visit_params(f);
    }

    fn param_count(&self) -> usize {
        self.main.param_count() + self.shortcut.param_count()
    }

    fn name(&self) -> &'static str {
        "residual"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        self.main.visit_state(f);
        self.shortcut.visit_state(f);
    }

    fn visit_state_q(&mut self, f: &mut dyn FnMut(&'static str, StateSlot<'_>)) {
        self.main.visit_state_q(f);
        self.shortcut.visit_state_q(f);
    }

    fn quantize_weights(&mut self, dtype: Dtype) {
        self.main.quantize_weights(dtype);
        self.shortcut.quantize_weights(dtype);
    }
}

/// Squeeze-and-excitation block: per-channel gating
/// `y = x · sigmoid(W₂ relu(W₁ GAP(x)))`, broadcast over the spatial dims.
///
/// Used inside EfficientNet's MBConv blocks.
pub struct SqueezeExcite {
    fc1: Linear,
    relu: ReLU,
    fc2: Linear,
    sigmoid: Sigmoid,
    cache: Option<SeCache>,
}

#[derive(Clone)]
struct SeCache {
    input: Tensor, // [N, C, H, W]
    gate: Tensor,  // [N, C]
}

impl Clone for SqueezeExcite {
    /// Clones the two dense layers (whose own clones drop their caches);
    /// the block-level cache starts empty (see [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        SqueezeExcite {
            fc1: self.fc1.clone(),
            relu: ReLU::new(),
            fc2: self.fc2.clone(),
            sigmoid: Sigmoid::new(),
            cache: None,
        }
    }
}

impl SqueezeExcite {
    /// Creates a squeeze-excite block over `ch` channels with the given
    /// bottleneck reduction (e.g. 4 → hidden = ch/4, at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `ch` or `reduction` is zero.
    pub fn new(ch: usize, reduction: usize, rng: &mut impl Rng) -> Self {
        assert!(ch > 0 && reduction > 0, "SqueezeExcite: zero dimension");
        let hidden = (ch / reduction).max(1);
        SqueezeExcite {
            fc1: Linear::new(ch, hidden, rng),
            relu: ReLU::new(),
            fc2: Linear::new(hidden, ch, rng),
            sigmoid: Sigmoid::new(),
            cache: None,
        }
    }
}

impl Layer for SqueezeExcite {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 4, "SqueezeExcite: input must be [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let squeezed = pool::global_avg_pool_forward(x); // [N, C]
        let z = self.fc1.forward(&squeezed, mode);
        let z = self.relu.forward(&z, mode);
        let z = self.fc2.forward(&z, mode);
        let gate = self.sigmoid.forward(&z, mode); // [N, C]
        let mut y = Tensor::zeros(x.shape());
        let plane = h * w;
        for i in 0..n {
            for ch in 0..c {
                let g = gate.data()[i * c + ch];
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    y.data_mut()[base + j] = x.data()[base + j] * g;
                }
            }
        }
        self.cache = Some(SeCache {
            input: x.clone(),
            gate,
        });
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("SqueezeExcite::backward before forward");
        let x = &cache.input;
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let plane = h * w;
        // Direct path: dL/dx += dy · gate ; gate path: dL/dgate = Σ_hw dy · x.
        let mut gi = Tensor::zeros(x.shape());
        let mut d_gate = Tensor::zeros(&[n, c]);
        for i in 0..n {
            for ch in 0..c {
                let g = cache.gate.data()[i * c + ch];
                let base = (i * c + ch) * plane;
                let mut acc = 0.0f32;
                for j in 0..plane {
                    let go = grad_out.data()[base + j];
                    gi.data_mut()[base + j] = go * g;
                    acc += go * x.data()[base + j];
                }
                d_gate.data_mut()[i * c + ch] = acc;
            }
        }
        // Backprop the gate path through sigmoid → fc2 → relu → fc1 → GAP.
        let d = self.sigmoid.backward(&d_gate);
        let d = self.fc2.backward(&d);
        let d = self.relu.backward(&d);
        let d = self.fc1.backward(&d); // [N, C]
        let d_squeeze = pool::global_avg_pool_backward(&d, h, w);
        gi.add_assign(&d_squeeze);
        gi
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        // Same two gradient paths as `backward`; the gate path descends
        // through the sub-layers' own input_backward so the dense layers
        // skip their weight gradients.
        let cache = self
            .cache
            .as_ref()
            .expect("SqueezeExcite::backward before forward");
        let x = &cache.input;
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let plane = h * w;
        let mut gi = Tensor::zeros(x.shape());
        let mut d_gate = Tensor::zeros(&[n, c]);
        for i in 0..n {
            for ch in 0..c {
                let g = cache.gate.data()[i * c + ch];
                let base = (i * c + ch) * plane;
                let mut acc = 0.0f32;
                for j in 0..plane {
                    let go = grad_out.data()[base + j];
                    gi.data_mut()[base + j] = go * g;
                    acc += go * x.data()[base + j];
                }
                d_gate.data_mut()[i * c + ch] = acc;
            }
        }
        let d = self.sigmoid.input_backward(&d_gate);
        let d = self.fc2.input_backward(&d);
        let d = self.relu.input_backward(&d);
        let d = self.fc1.input_backward(&d); // [N, C]
        let d_squeeze = pool::global_avg_pool_backward(&d, h, w);
        gi.add_assign(&d_squeeze);
        gi
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.ndim(), 4, "SqueezeExcite: input must be [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let squeezed = pool::global_avg_pool_forward_ws(x, ws); // [N, C]
        let z1 = self.fc1.infer(&squeezed, ws);
        ws.recycle(squeezed);
        let z2 = self.relu.infer(&z1, ws);
        ws.recycle(z1);
        let z3 = self.fc2.infer(&z2, ws);
        ws.recycle(z2);
        let gate = self.sigmoid.infer(&z3, ws); // [N, C]
        ws.recycle(z3);
        let mut y = ws.take_dirty(x.len());
        let plane = h * w;
        for i in 0..n {
            for ch in 0..c {
                let g = gate.data()[i * c + ch];
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    y[base + j] = x.data()[base + j] * g;
                }
            }
        }
        ws.recycle(gate);
        Tensor::from_vec(y, x.shape())
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.ndim(), 4, "SqueezeExcite: input must be [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let squeezed = pool::global_avg_pool_forward_ws(x, ws); // [N, C]
        let z1 = self.fc1.infer_recording(&squeezed, tape, ws);
        ws.recycle(squeezed);
        let z2 = self.relu.infer_recording(&z1, tape, ws);
        ws.recycle(z1);
        let z3 = self.fc2.infer_recording(&z2, tape, ws);
        ws.recycle(z2);
        let gate = self.sigmoid.infer_recording(&z3, tape, ws); // [N, C]
        ws.recycle(z3);
        // The block's own frame — the `SeCache` equivalent: input in
        // `vals`, gate in `extra`, shape in `aux` — pushes *after* the
        // sub-layers so it pops first in `grad`.
        let frame = tape.push();
        frame.vals.extend_from_slice(x.data());
        frame.extra.extend_from_slice(gate.data());
        frame.aux.extend_from_slice(x.shape());
        let mut y = ws.take_dirty(x.len());
        let plane = h * w;
        for i in 0..n {
            for ch in 0..c {
                let g = gate.data()[i * c + ch];
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    y[base + j] = x.data()[base + j] * g;
                }
            }
        }
        ws.recycle(gate);
        Tensor::from_vec(y, x.shape())
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // Same two gradient paths as `input_backward`, reading the input
        // and gate from the block's frame instead of `self.cache`.
        let frame = tape.pop();
        let (n, c, h, w) = (frame.aux[0], frame.aux[1], frame.aux[2], frame.aux[3]);
        let plane = h * w;
        assert_eq!(
            grad_out.len(),
            n * c * plane,
            "SqueezeExcite: grad length does not match the recorded frame"
        );
        let mut gi = ws.take_dirty(grad_out.len());
        let mut d_gate = ws.take_dirty(n * c);
        for i in 0..n {
            for ch in 0..c {
                let g = frame.extra[i * c + ch];
                let base = (i * c + ch) * plane;
                let mut acc = 0.0f32;
                for j in 0..plane {
                    let go = grad_out.data()[base + j];
                    gi[base + j] = go * g;
                    acc += go * frame.vals[base + j];
                }
                d_gate[i * c + ch] = acc;
            }
        }
        // The frame's last read was the loop above; recycle it *before*
        // descending so frames return to the spare pool in pop order —
        // the invariant that rebinds each buffer to the same traversal
        // position on the next recording.
        tape.recycle(frame);
        let d_gate = Tensor::from_vec(d_gate, &[n, c]);
        // Descend the gate path; sub-layer frames pop in reverse recording
        // order: sigmoid, fc2, relu, fc1.
        let d = self.sigmoid.grad(&d_gate, tape, ws);
        ws.recycle(d_gate);
        let d2 = self.fc2.grad(&d, tape, ws);
        ws.recycle(d);
        let d3 = self.relu.grad(&d2, tape, ws);
        ws.recycle(d2);
        let d4 = self.fc1.grad(&d3, tape, ws); // [N, C]
        ws.recycle(d3);
        let d_squeeze = pool::global_avg_pool_backward_ws(&d4, h, w, ws);
        ws.recycle(d4);
        let mut gi = Tensor::from_vec(gi, &[n, c, h, w]);
        gi.add_assign(&d_squeeze);
        ws.recycle(d_squeeze);
        gi
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }

    fn param_count(&self) -> usize {
        self.fc1.param_count() + self.fc2.param_count()
    }

    fn name(&self) -> &'static str {
        "squeeze_excite"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        self.fc1.visit_state(f);
        self.fc2.visit_state(f);
    }

    fn visit_state_q(&mut self, f: &mut dyn FnMut(&'static str, StateSlot<'_>)) {
        self.fc1.visit_state_q(f);
        self.fc2.visit_state_q(f);
    }

    fn quantize_weights(&mut self, dtype: Dtype) {
        self.fc1.quantize_weights(dtype);
        self.fc2.quantize_weights(dtype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Conv2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sequential_composes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Sequential::new()
            .push(Conv2d::new(1, 2, 3, 1, 1, true, &mut rng))
            .push(ReLU::new());
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i as f32) - 8.0);
        let y = s.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
        assert!(y.min() >= 0.0, "relu output must be non-negative");
        let gi = s.backward(&Tensor::ones(y.shape()));
        assert_eq!(gi.shape(), x.shape());
        assert!(s.param_count() > 0);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        let x = Tensor::from_fn(&[2, 3], |i| i as f32);
        assert_eq!(s.forward(&x, Mode::Eval).data(), x.data());
        assert_eq!(s.backward(&x).data(), x.data());
    }

    #[test]
    fn residual_identity_adds_input() {
        // main = zero conv -> residual output equals input.
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 2, 1, 1, 0, false, &mut rng);
        conv.visit_params(&mut |s| s.value.fill(0.0));
        let mut r = Residual::new(Sequential::new().push(conv));
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| (i as f32) * 0.1);
        let y = r.forward(&x, Mode::Train);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
        // Gradient through identity skip: doubled path when main is identity-0.
        let g = r.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn residual_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = Residual::new(
            Sequential::new()
                .push(Conv2d::new(2, 2, 3, 1, 1, true, &mut rng))
                .push(ReLU::new()),
        );
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| ((i as f32) * 0.17).sin());
        let y = r.forward(&x, Mode::Train);
        let gi = r.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for &flat in &[0usize, 9, 20, 31] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (r.forward(&xp, Mode::Train).sum() - r.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!((num - gi.data()[flat]).abs() < 2e-2);
        }
    }

    #[test]
    fn squeeze_excite_shapes_and_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut se = SqueezeExcite::new(4, 2, &mut rng);
        let x = Tensor::from_fn(&[2, 4, 3, 3], |i| ((i as f32) * 0.23).cos());
        let y = se.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        let gi = se.backward(&Tensor::ones(y.shape()));
        assert_eq!(gi.shape(), x.shape());
        let eps = 1e-3;
        for &flat in &[0usize, 17, 40, 71] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (se.forward(&xp, Mode::Train).sum() - se.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!(
                (num - gi.data()[flat]).abs() < 2e-2,
                "flat {flat}: num={num} ana={}",
                gi.data()[flat]
            );
        }
    }

    #[test]
    fn squeeze_excite_gates_are_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut se = SqueezeExcite::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let y = se.forward(&x, Mode::Eval);
        // Gate in (0,1) -> |y| < |x|.
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!(a.abs() < b.abs() + 1e-6);
        }
    }
}
