//! Loss functions returning both the scalar loss and the gradient with
//! respect to the logits (ready to feed into `Layer::backward`).

use usb_tensor::{kernels, ops, Tensor, Workspace};

/// Mean softmax cross-entropy over a batch.
///
/// `logits` is `[N, K]`, `labels` has one class index per row. Returns
/// `(loss, dL/dlogits)` where the gradient is already divided by `N`.
///
/// # Panics
///
/// Panics if shapes disagree or a label is out of range.
///
/// ```rust
/// # use usb_nn::loss::softmax_cross_entropy;
/// # use usb_tensor::Tensor;
/// let logits = Tensor::from_vec(vec![5.0, -5.0], &[1, 2]);
/// let (loss, _grad) = softmax_cross_entropy(&logits, &[0]);
/// assert!(loss < 0.01, "confident correct prediction has near-zero loss");
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.ndim(),
        2,
        "softmax_cross_entropy: logits must be [N,K]"
    );
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(
        labels.len(),
        n,
        "softmax_cross_entropy: label count mismatch"
    );
    let probs = ops::softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range for {k} classes");
        let p = probs.data()[i * k + y].max(1e-12);
        loss -= (p as f64).ln();
        grad.data_mut()[i * k + y] -= 1.0;
    }
    grad.scale_assign(inv_n);
    ((loss / n as f64) as f32, grad)
}

/// Softmax cross-entropy where every row shares one target class — the form
/// used by all trigger reverse-engineering losses (`CE(f(x'), t)`).
///
/// # Panics
///
/// Panics if `target >= K`.
pub fn softmax_cross_entropy_uniform_target(logits: &Tensor, target: usize) -> (f32, Tensor) {
    let n = logits.shape()[0];
    let labels = vec![target; n];
    softmax_cross_entropy(logits, &labels)
}

/// [`softmax_cross_entropy_uniform_target`] with the gradient drawn from
/// `ws` instead of freshly allocated — the per-step form the refine hot
/// loop uses.
///
/// The float-op sequence is the same as the allocating path — max-shifted
/// exponentials, divide by the row sum, subtract one at the target, scale
/// everything by `1/N` — so loss and gradient are bit-identical (see
/// `ws_variant_is_bitwise_identical`).
///
/// # Panics
///
/// Panics if `logits` is not `[N, K]` or `target >= K`.
pub fn softmax_cross_entropy_uniform_target_ws(
    logits: &Tensor,
    target: usize,
    ws: &mut Workspace,
) -> (f32, Tensor) {
    assert_eq!(
        logits.ndim(),
        2,
        "softmax_cross_entropy: logits must be [N,K]"
    );
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert!(target < k, "label {target} out of range for {k} classes");
    let mut grad = ws.take_dirty(n * k);
    let mut loss = 0.0f64;
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for (o, &v) in grad[i * k..(i + 1) * k].iter_mut().zip(row) {
            let e = (v - m).exp();
            *o = e;
            z += e;
        }
        let row_grad = &mut grad[i * k..(i + 1) * k];
        if !kernels::try_div(row_grad, z) {
            for o in row_grad {
                *o /= z;
            }
        }
        let p = grad[i * k + target].max(1e-12);
        loss -= (p as f64).ln();
        grad[i * k + target] -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    if !kernels::try_scale(&mut grad, inv_n) {
        for v in &mut grad {
            *v *= inv_n;
        }
    }
    ((loss / n as f64) as f32, Tensor::from_vec(grad, &[n, k]))
}

/// Mean squared error `mean((a - b)²)` and its gradient with respect to `a`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(a: &Tensor, b: &Tensor) -> (f32, Tensor) {
    assert_eq!(a.shape(), b.shape(), "mse: shape mismatch");
    let diff = a.sub(b);
    let loss = diff.map(|d| d * d).mean();
    let grad = diff.scale(2.0 / a.len() as f32);
    (loss, grad)
}

/// Negative mean of the margin `logit_target − max_other`, a hinge-free
/// targeted-attack surrogate used by the IAD generator training.
///
/// Returns `(loss, dL/dlogits)`; minimising pushes every row's target logit
/// above all others.
///
/// # Panics
///
/// Panics if `target >= K`.
pub fn targeted_margin(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2, "targeted_margin: logits must be [N,K]");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert!(target < k, "target {target} out of range for {k} classes");
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(logits.shape());
    let inv_n = 1.0 / n as f32;
    for i in 0..n {
        let row = &logits.data()[i * k..(i + 1) * k];
        let mut best_other = f32::NEG_INFINITY;
        let mut best_j = 0;
        for (j, &v) in row.iter().enumerate() {
            if j != target && v > best_other {
                best_other = v;
                best_j = j;
            }
        }
        loss += (best_other - row[target]) * inv_n;
        grad.data_mut()[i * k + target] -= inv_n;
        grad.data_mut()[i * k + best_j] += inv_n;
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_k() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.2, -0.7, 1.1, 0.4, 0.0, -0.3], &[2, 3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for flat in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[flat] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[flat] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[flat]).abs() < 1e-3);
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // softmax CE gradient per row is (p - onehot), which sums to 0.
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], &[2, 3]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1, 2]);
        for i in 0..2 {
            let s: f32 = grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_target_matches_explicit_labels() {
        let logits = Tensor::from_vec(vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6], &[2, 3]);
        let (a, ga) = softmax_cross_entropy_uniform_target(&logits, 1);
        let (b, gb) = softmax_cross_entropy(&logits, &[1, 1]);
        assert_eq!(a, b);
        assert_eq!(ga.data(), gb.data());
    }

    #[test]
    fn ws_variant_is_bitwise_identical() {
        let mut ws = Workspace::new();
        let logits = Tensor::from_vec(
            vec![
                0.2, -0.7, 1.1, 0.4, 0.0, -0.3, 9.5, -9.5, 0.01, 3.3, 3.3, 3.3,
            ],
            &[4, 3],
        );
        for target in 0..3 {
            let (l0, g0) = softmax_cross_entropy_uniform_target(&logits, target);
            let (l1, g1) = softmax_cross_entropy_uniform_target_ws(&logits, target, &mut ws);
            assert_eq!(l0.to_bits(), l1.to_bits());
            assert_eq!(g0.shape(), g1.shape());
            for (a, b) in g0.data().iter().zip(g1.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            ws.recycle(g1);
        }
    }

    #[test]
    fn mse_zero_when_equal() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert_eq!(g.data(), &[0.0, 0.0]);
    }

    #[test]
    fn mse_gradient_matches_finite_differences() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]);
        let b = Tensor::from_vec(vec![0.0, 1.0, 2.5], &[3]);
        let (_, g) = mse(&a, &b);
        let eps = 1e-3;
        for flat in 0..3 {
            let mut ap = a.clone();
            ap.data_mut()[flat] += eps;
            let mut am = a.clone();
            am.data_mut()[flat] -= eps;
            let num = (mse(&ap, &b).0 - mse(&am, &b).0) / (2.0 * eps);
            assert!((num - g.data()[flat]).abs() < 1e-3);
        }
    }

    #[test]
    fn targeted_margin_negative_when_target_wins() {
        let logits = Tensor::from_vec(vec![5.0, 1.0, 0.0], &[1, 3]);
        let (l, g) = targeted_margin(&logits, 0);
        assert!(l < 0.0);
        assert!(g.data()[0] < 0.0, "gradient pushes target logit up");
    }
}
