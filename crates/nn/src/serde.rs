//! Versioned binary persistence for whole networks: a per-layer state
//! dict keyed by layer kind, riding on [`usb_tensor::io`] tensor records.
//!
//! # Design
//!
//! A [`Network`] is fully reconstructible from its [`Architecture`] (kind,
//! input shape, classes, width — the topology) plus the flat sequence of
//! state tensors visited by [`Layer::visit_state`] (parameters and
//! buffers — the weights). The format therefore stores the architecture
//! header followed by one record per state tensor, each tagged with the
//! kind name of the layer that owns it. Loading rebuilds the topology via
//! [`Architecture::build`] (the same registry of layer constructors the
//! `clone_box` machinery relies on), then overwrites every state tensor in
//! visitation order, verifying kind and shape as it goes.
//!
//! Because the payload is the bit-exact `f32` image of every parameter and
//! buffer, a loaded network's forward passes — and therefore any defense
//! verdict computed on it — are **bit-identical** to the original's
//! (`tests/persistence_roundtrip.rs` enforces this). Optimizer state and
//! forward caches are transient and not persisted.
//!
//! # Network blob layout (format version 1, little-endian)
//!
//! ```text
//! 4   magic b"USBN"
//! 2   u16 format version (currently 1)
//! 1   u8 model kind (0 BasicCnn, 1 ResNet18, 2 Vgg16, 3 EfficientNetB0)
//! 4   u32 input channels     ┐
//! 4   u32 input height       │ the Architecture the topology is
//! 4   u32 input width        │ rebuilt from
//! 4   u32 num_classes        │
//! 4   u32 width multiplier   ┘
//! 4   u32 state-tensor count
//!     per state tensor: kind string (u16 len + UTF-8) + tensor record
//!     (see usb_tensor::io for the tensor record bytes)
//! ```

use crate::layer::Layer;
use crate::models::{Architecture, ModelKind, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;
use usb_tensor::io::{
    expect_magic, expect_version, read_str, read_tensor, read_u32, write_str, write_tensor,
    write_u16, write_u32, IoError,
};

/// Magic bytes opening a serialized network.
pub const NETWORK_MAGIC: [u8; 4] = *b"USBN";

/// Current network-blob format version.
pub const NETWORK_VERSION: u16 = 1;

fn model_kind_tag(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::BasicCnn => 0,
        ModelKind::ResNet18 => 1,
        ModelKind::Vgg16 => 2,
        ModelKind::EfficientNetB0 => 3,
    }
}

fn model_kind_from_tag(tag: u8) -> Result<ModelKind, IoError> {
    Ok(match tag {
        0 => ModelKind::BasicCnn,
        1 => ModelKind::ResNet18,
        2 => ModelKind::Vgg16,
        3 => ModelKind::EfficientNetB0,
        other => {
            return Err(IoError::format(format!(
                "unknown model kind tag {other} (this build knows 0..=3)"
            )))
        }
    })
}

/// Writes the architecture header fields (everything after magic+version).
fn write_architecture(w: &mut impl Write, arch: Architecture) -> Result<(), IoError> {
    w.write_all(&[model_kind_tag(arch.kind)])?;
    let (c, h, wd) = arch.input;
    write_u32(w, c as u32)?;
    write_u32(w, h as u32)?;
    write_u32(w, wd as u32)?;
    write_u32(w, arch.num_classes as u32)?;
    write_u32(w, arch.width as u32)
}

fn read_architecture(r: &mut impl Read) -> Result<Architecture, IoError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let kind = model_kind_from_tag(tag[0])?;
    let c = read_u32(r)? as usize;
    let h = read_u32(r)? as usize;
    let w = read_u32(r)? as usize;
    let classes = read_u32(r)? as usize;
    let width = read_u32(r)? as usize;
    if c == 0 || h == 0 || w == 0 || classes == 0 || width == 0 {
        return Err(IoError::format(
            "architecture header contains a zero dimension",
        ));
    }
    Ok(Architecture::new(kind, (c, h, w), classes).with_width(width))
}

/// Serializes `net` as a self-delimiting network blob.
///
/// Takes `&mut` because state visitation shares the mutable
/// [`Layer::visit_params`] plumbing; the network is not modified.
pub fn write_network(w: &mut impl Write, net: &mut Network) -> Result<(), IoError> {
    w.write_all(&NETWORK_MAGIC)?;
    write_u16(w, NETWORK_VERSION)?;
    write_architecture(w, net.arch())?;
    // First pass: count entries (the traversal is cheap — no copies).
    let mut count: u32 = 0;
    net.visit_state(&mut |_, _| count += 1);
    write_u32(w, count)?;
    let mut result = Ok(());
    net.visit_state(&mut |kind, tensor| {
        if result.is_err() {
            return;
        }
        result = write_str(w, kind).and_then(|()| write_tensor(w, tensor));
    });
    result
}

/// Reads a network blob written by [`write_network`], rebuilding the
/// topology from the stored [`Architecture`] and loading every state
/// tensor bit-exactly.
///
/// # Errors
///
/// Returns [`IoError::Format`] on bad magic/version, an unknown model
/// kind, a layer-kind or shape mismatch against the rebuilt topology, or
/// a corrupt tensor record. Never panics on malformed input.
pub fn read_network(r: &mut impl Read) -> Result<Network, IoError> {
    expect_magic(r, &NETWORK_MAGIC, "network blob")?;
    expect_version(r, NETWORK_VERSION, "network blob")?;
    let arch = read_architecture(r)?;
    let count = read_u32(r)? as usize;
    // The build rng only sets initial weights, which are overwritten below;
    // any seed yields the same topology.
    let mut net = arch.build(&mut StdRng::seed_from_u64(0));
    let mut expected: u32 = 0;
    net.visit_state(&mut |_, _| expected += 1);
    if count != expected as usize {
        return Err(IoError::format(format!(
            "network blob has {count} state tensors but the {:?} topology has {expected}",
            arch.kind
        )));
    }
    // Decode all records first (reader calls can fail; the visitor cannot).
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let kind = read_str(r)?;
        let tensor = read_tensor(r)
            .map_err(|e| IoError::format(format!("state tensor {i} ({kind}): {e}")))?;
        records.push((kind, tensor));
    }
    let mut idx = 0usize;
    let mut mismatch: Option<String> = None;
    net.visit_state(&mut |kind, tensor| {
        if mismatch.is_some() {
            return;
        }
        let (stored_kind, stored) = &records[idx];
        if stored_kind != kind {
            mismatch = Some(format!(
                "state tensor {idx}: stored layer kind {stored_kind:?} but topology expects {kind:?}"
            ));
        } else if stored.shape() != tensor.shape() {
            mismatch = Some(format!(
                "state tensor {idx} ({kind}): stored shape {:?} but topology expects {:?}",
                stored.shape(),
                tensor.shape()
            ));
        } else {
            tensor.data_mut().copy_from_slice(stored.data());
        }
        idx += 1;
    });
    match mismatch {
        Some(msg) => Err(IoError::format(msg)),
        None => Ok(net),
    }
}

/// Saves a network to `path` (creating parent directories).
pub fn save_network(path: &Path, net: &mut Network) -> Result<(), IoError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    write_network(&mut f, net)
}

/// Loads a network from `path`.
pub fn load_network(path: &Path) -> Result<Network, IoError> {
    let mut f = fs::File::open(path)?;
    read_network(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use usb_tensor::Tensor;

    fn trained_ish(kind: ModelKind, input: (usize, usize, usize)) -> Network {
        let arch = Architecture::new(kind, input, 4).with_width(4);
        let mut net = arch.build(&mut StdRng::seed_from_u64(42));
        // Touch batch-norm running stats so buffers are non-default.
        let x = Tensor::from_fn(&[2, input.0, input.1, input.2], |i| {
            ((i as f32) * 0.1).sin()
        });
        for _ in 0..3 {
            let _ = net.forward(&x, Mode::Train);
        }
        net
    }

    fn roundtrip(kind: ModelKind, input: (usize, usize, usize)) {
        let mut net = trained_ish(kind, input);
        let mut buf = Vec::new();
        write_network(&mut buf, &mut net).unwrap();
        let mut back = read_network(&mut buf.as_slice()).unwrap();
        assert_eq!(back.arch(), net.arch());
        let x = Tensor::from_fn(&[2, input.0, input.1, input.2], |i| {
            ((i as f32) * 0.2).cos()
        });
        let ya = net.forward(&x, Mode::Eval);
        let yb = back.forward(&x, Mode::Eval);
        assert_eq!(
            ya.data(),
            yb.data(),
            "{kind:?}: eval forward must be bit-identical"
        );
    }

    #[test]
    fn basic_cnn_roundtrips() {
        roundtrip(ModelKind::BasicCnn, (1, 12, 12));
    }

    #[test]
    fn resnet18_roundtrips_with_running_stats() {
        roundtrip(ModelKind::ResNet18, (3, 8, 8));
    }

    #[test]
    fn efficientnet_roundtrips() {
        roundtrip(ModelKind::EfficientNetB0, (3, 8, 8));
    }

    #[test]
    fn truncated_blob_is_a_clean_error() {
        let mut net = trained_ish(ModelKind::BasicCnn, (1, 12, 12));
        let mut buf = Vec::new();
        write_network(&mut buf, &mut net).unwrap();
        for len in [0, 3, 6, 10, 24, buf.len() / 2, buf.len() - 1] {
            match read_network(&mut &buf[..len]) {
                Err(err) => assert!(matches!(err, IoError::Format(_)), "len {len}: {err}"),
                Ok(_) => panic!("truncated blob of {len} bytes decoded successfully"),
            }
        }
    }

    #[test]
    fn kind_tag_corruption_is_a_clean_error() {
        let mut net = trained_ish(ModelKind::BasicCnn, (1, 12, 12));
        let mut buf = Vec::new();
        write_network(&mut buf, &mut net).unwrap();
        buf[6] = 200; // model kind tag
        match read_network(&mut buf.as_slice()) {
            Err(err) => assert!(err.to_string().contains("model kind"), "{err}"),
            Ok(_) => panic!("corrupt kind tag decoded successfully"),
        }
    }

    #[test]
    fn state_visitation_includes_batchnorm_buffers() {
        let mut net = trained_ish(ModelKind::ResNet18, (3, 8, 8));
        let mut params = 0usize;
        net.visit_params(&mut |_| params += 1);
        let mut state = 0usize;
        let mut bn_tensors = 0usize;
        net.visit_state(&mut |kind, _| {
            state += 1;
            if kind == "batchnorm2d" {
                bn_tensors += 1;
            }
        });
        // Each batch-norm contributes 2 params + 2 buffers, so the state
        // traversal must be strictly longer than the param traversal.
        assert!(state > params, "state {state} <= params {params}");
        assert_eq!(bn_tensors % 4, 0);
        assert!(bn_tensors > 0);
    }
}
