//! Versioned binary persistence for whole networks: a per-layer state
//! dict keyed by layer kind, riding on [`usb_tensor::io`] tensor records.
//!
//! # Design
//!
//! A [`Network`] is fully reconstructible from its [`Architecture`] (kind,
//! input shape, classes, width — the topology) plus the flat sequence of
//! state tensors visited by [`Layer::visit_state`] (parameters and
//! buffers — the weights). The format therefore stores the architecture
//! header followed by one record per state tensor, each tagged with the
//! kind name of the layer that owns it. Loading rebuilds the topology via
//! [`Architecture::build`] (the same registry of layer constructors the
//! `clone_box` machinery relies on), then overwrites every state tensor in
//! visitation order, verifying kind and shape as it goes.
//!
//! Because the payload is the bit-exact `f32` image of every parameter and
//! buffer, a loaded f32 network's forward passes — and therefore any
//! defense verdict computed on it — are **bit-identical** to the
//! original's (`tests/persistence_roundtrip.rs` enforces this). Optimizer
//! state and forward caches are transient and not persisted.
//!
//! Version 2 adds low-precision weight storage: a `u8` weight dtype in the
//! header (a cheap sniff — the per-record dtype tags are authoritative and
//! must agree with it), and GEMM weights may be stored as `f16` or `Q8`
//! records ([`usb_tensor::QTensor`]). Loading such a blob reconstructs a
//! *quantized* network: the payload is installed verbatim on the weight
//! slots and dequantized on the fly at inference; training entry points
//! panic. Non-GEMM state (biases, batch-norm) always stays f32.
//!
//! # Network blob layout (format version 2, little-endian)
//!
//! ```text
//! 4   magic b"USBN"
//! 2   u16 format version (currently 2)
//! 1   u8 model kind (0 BasicCnn, 1 ResNet18, 2 Vgg16, 3 EfficientNetB0)
//! 4   u32 input channels     ┐
//! 4   u32 input height       │ the Architecture the topology is
//! 4   u32 input width        │ rebuilt from
//! 4   u32 num_classes        │
//! 4   u32 width multiplier   ┘
//! 1   u8 weight dtype (0 f32, 1 f16, 2 q8)
//! 4   u32 state-tensor count
//!     per state tensor: kind string (u16 len + UTF-8) + tensor record
//!     (see usb_tensor::io for the tensor record bytes)
//! ```

use crate::layer::{Layer, StateSlot};
use crate::models::{Architecture, ModelKind, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;
use usb_tensor::io::{
    expect_magic, expect_version, read_str, read_tensor_record, read_u32, write_qtensor, write_str,
    write_tensor, write_u16, write_u32, IoError, TensorRecord,
};
use usb_tensor::{Dtype, QTensor, Tensor};

/// Magic bytes opening a serialized network.
pub const NETWORK_MAGIC: [u8; 4] = *b"USBN";

/// Current network-blob format version.
pub const NETWORK_VERSION: u16 = 2;

fn model_kind_tag(kind: ModelKind) -> u8 {
    match kind {
        ModelKind::BasicCnn => 0,
        ModelKind::ResNet18 => 1,
        ModelKind::Vgg16 => 2,
        ModelKind::EfficientNetB0 => 3,
    }
}

fn model_kind_from_tag(tag: u8) -> Result<ModelKind, IoError> {
    Ok(match tag {
        0 => ModelKind::BasicCnn,
        1 => ModelKind::ResNet18,
        2 => ModelKind::Vgg16,
        3 => ModelKind::EfficientNetB0,
        other => {
            return Err(IoError::format(format!(
                "unknown model kind tag {other} (this build knows 0..=3)"
            )))
        }
    })
}

/// Writes the architecture header fields (everything after magic+version).
fn write_architecture(w: &mut impl Write, arch: Architecture) -> Result<(), IoError> {
    w.write_all(&[model_kind_tag(arch.kind)])?;
    let (c, h, wd) = arch.input;
    write_u32(w, c as u32)?;
    write_u32(w, h as u32)?;
    write_u32(w, wd as u32)?;
    write_u32(w, arch.num_classes as u32)?;
    write_u32(w, arch.width as u32)
}

fn read_architecture(r: &mut impl Read) -> Result<Architecture, IoError> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let kind = model_kind_from_tag(tag[0])?;
    let c = read_u32(r)? as usize;
    let h = read_u32(r)? as usize;
    let w = read_u32(r)? as usize;
    let classes = read_u32(r)? as usize;
    let width = read_u32(r)? as usize;
    if c == 0 || h == 0 || w == 0 || classes == 0 || width == 0 {
        return Err(IoError::format(
            "architecture header contains a zero dimension",
        ));
    }
    Ok(Architecture::new(kind, (c, h, w), classes).with_width(width))
}

/// Serializes `net` as a self-delimiting network blob, preserving its
/// current weight storage (dense networks write f32 records, quantized
/// networks write their quantized payloads verbatim).
///
/// Takes `&mut` because state visitation shares the mutable
/// [`Layer::visit_params`] plumbing; the network is not modified.
pub fn write_network(w: &mut impl Write, net: &mut Network) -> Result<(), IoError> {
    let dtype = net.weight_dtype().ok_or_else(|| {
        IoError::format("network has mixed weight dtypes and cannot be serialized")
    })?;
    write_network_dtype(w, net, dtype)
}

/// Serializes `net` with its GEMM weights stored as `dtype`, quantizing
/// dense weights on the fly (the in-memory network is not modified). A
/// network that is *already* quantized can only be written at its own
/// dtype — cross-dtype re-quantization would silently compound rounding
/// error, so it is an error instead.
pub fn write_network_dtype(
    w: &mut impl Write,
    net: &mut Network,
    dtype: Dtype,
) -> Result<(), IoError> {
    let current = net.weight_dtype().ok_or_else(|| {
        IoError::format("network has mixed weight dtypes and cannot be serialized")
    })?;
    if current != Dtype::F32 && current != dtype {
        return Err(IoError::format(format!(
            "network weights are already {current} and cannot be re-quantized to {dtype}"
        )));
    }
    w.write_all(&NETWORK_MAGIC)?;
    write_u16(w, NETWORK_VERSION)?;
    write_architecture(w, net.arch())?;
    w.write_all(&[dtype.tag()])?;
    // First pass: count entries (the traversal is cheap — no copies).
    let mut count: u32 = 0;
    net.visit_state_q(&mut |_, _| count += 1);
    write_u32(w, count)?;
    let mut result = Ok(());
    net.visit_state_q(&mut |kind, slot| {
        if result.is_err() {
            return;
        }
        result = write_str(w, kind).and_then(|()| match slot {
            StateSlot::Dense(tensor) => write_tensor(w, tensor),
            StateSlot::Weight { dense, quant, .. } => match quant {
                Some(q) => write_qtensor(w, q),
                None if dtype == Dtype::F32 => write_tensor(w, dense),
                None => write_qtensor(w, &QTensor::quantize(dense, dtype)),
            },
        });
    });
    result
}

/// Reads a network blob written by [`write_network`], rebuilding the
/// topology from the stored [`Architecture`] and loading every state
/// tensor bit-exactly.
///
/// # Errors
///
/// Returns [`IoError::Format`] on bad magic/version, an unknown model
/// kind, a layer-kind or shape mismatch against the rebuilt topology, or
/// a corrupt tensor record. Never panics on malformed input.
pub fn read_network(r: &mut impl Read) -> Result<Network, IoError> {
    expect_magic(r, &NETWORK_MAGIC, "network blob")?;
    expect_version(r, NETWORK_VERSION, "network blob")?;
    let arch = read_architecture(r)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let header_dtype = Dtype::from_tag(tag[0]).ok_or_else(|| {
        IoError::format(format!(
            "unknown weight dtype tag {} (this build knows f32/f16/q8)",
            tag[0]
        ))
    })?;
    let count = read_u32(r)? as usize;
    // The build rng only sets initial weights, which are overwritten below;
    // any seed yields the same topology.
    let mut net = arch.build(&mut StdRng::seed_from_u64(0));
    let mut expected: u32 = 0;
    net.visit_state_q(&mut |_, _| expected += 1);
    if count != expected as usize {
        return Err(IoError::format(format!(
            "network blob has {count} state tensors but the {:?} topology has {expected}",
            arch.kind
        )));
    }
    // Decode all records first (reader calls can fail; the visitor cannot).
    let mut records: Vec<(String, Option<TensorRecord>)> = Vec::with_capacity(count);
    for i in 0..count {
        let kind = read_str(r)?;
        let record = read_tensor_record(r)
            .map_err(|e| IoError::format(format!("state tensor {i} ({kind}): {e}")))?;
        records.push((kind, Some(record)));
    }
    let mut idx = 0usize;
    let mut mismatch: Option<String> = None;
    net.visit_state_q(&mut |kind, slot| {
        if mismatch.is_some() {
            return;
        }
        let (stored_kind, record) = &mut records[idx];
        if stored_kind != kind {
            mismatch = Some(format!(
                "state tensor {idx}: stored layer kind {stored_kind:?} but topology expects {kind:?}"
            ));
            return;
        }
        // The header dtype is a sniffable summary; every record must agree
        // with it so a corrupt or hand-edited blob fails loudly.
        match (record.take().expect("record visited twice"), slot) {
            (TensorRecord::Dense(stored), StateSlot::Dense(tensor)) => {
                if stored.shape() != tensor.shape() {
                    mismatch = Some(format!(
                        "state tensor {idx} ({kind}): stored shape {:?} but topology expects {:?}",
                        stored.shape(),
                        tensor.shape()
                    ));
                } else {
                    tensor.data_mut().copy_from_slice(stored.data());
                }
            }
            (TensorRecord::Dense(stored), StateSlot::Weight { dense, .. }) => {
                if header_dtype != Dtype::F32 {
                    mismatch = Some(format!(
                        "state tensor {idx} ({kind}): f32 weight record in a {header_dtype} blob"
                    ));
                } else if stored.shape() != dense.shape() {
                    mismatch = Some(format!(
                        "state tensor {idx} ({kind}): stored shape {:?} but topology expects {:?}",
                        stored.shape(),
                        dense.shape()
                    ));
                } else {
                    dense.data_mut().copy_from_slice(stored.data());
                }
            }
            (TensorRecord::Quant(q), StateSlot::Weight { dense, grad, quant }) => {
                if q.dtype() != header_dtype {
                    mismatch = Some(format!(
                        "state tensor {idx} ({kind}): {} weight record in a {header_dtype} blob",
                        q.dtype()
                    ));
                } else if q.shape() != dense.shape() {
                    mismatch = Some(format!(
                        "state tensor {idx} ({kind}): stored shape {:?} but topology expects {:?}",
                        q.shape(),
                        dense.shape()
                    ));
                } else {
                    // Install the payload and free the dense buffers the
                    // topology build allocated — the whole point of a
                    // low-precision bundle is the resident saving.
                    *dense = Tensor::zeros(&[0]);
                    *grad = Tensor::zeros(&[0]);
                    *quant = Some(q);
                }
            }
            (TensorRecord::Quant(_), StateSlot::Dense(_)) => {
                mismatch = Some(format!(
                    "state tensor {idx} ({kind}): quantized record on a non-weight slot"
                ));
            }
        }
        idx += 1;
    });
    match mismatch {
        Some(msg) => Err(IoError::format(msg)),
        None => Ok(net),
    }
}

/// Reads just the weight-dtype byte from a network blob header (magic,
/// version, architecture, dtype) without decoding any tensor records — the
/// cheap sniff `usb_repro inspect`/`serve` use to report bundle precision.
pub fn peek_weight_dtype(r: &mut impl Read) -> Result<Dtype, IoError> {
    expect_magic(r, &NETWORK_MAGIC, "network blob")?;
    expect_version(r, NETWORK_VERSION, "network blob")?;
    let _ = read_architecture(r)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    Dtype::from_tag(tag[0]).ok_or_else(|| {
        IoError::format(format!(
            "unknown weight dtype tag {} (this build knows f32/f16/q8)",
            tag[0]
        ))
    })
}

/// Saves a network to `path` (creating parent directories).
pub fn save_network(path: &Path, net: &mut Network) -> Result<(), IoError> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    write_network(&mut f, net)
}

/// Loads a network from `path`.
pub fn load_network(path: &Path) -> Result<Network, IoError> {
    let mut f = fs::File::open(path)?;
    read_network(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use usb_tensor::Tensor;

    fn trained_ish(kind: ModelKind, input: (usize, usize, usize)) -> Network {
        let arch = Architecture::new(kind, input, 4).with_width(4);
        let mut net = arch.build(&mut StdRng::seed_from_u64(42));
        // Touch batch-norm running stats so buffers are non-default.
        let x = Tensor::from_fn(&[2, input.0, input.1, input.2], |i| {
            ((i as f32) * 0.1).sin()
        });
        for _ in 0..3 {
            let _ = net.forward(&x, Mode::Train);
        }
        net
    }

    fn roundtrip(kind: ModelKind, input: (usize, usize, usize)) {
        let mut net = trained_ish(kind, input);
        let mut buf = Vec::new();
        write_network(&mut buf, &mut net).unwrap();
        let mut back = read_network(&mut buf.as_slice()).unwrap();
        assert_eq!(back.arch(), net.arch());
        let x = Tensor::from_fn(&[2, input.0, input.1, input.2], |i| {
            ((i as f32) * 0.2).cos()
        });
        let ya = net.forward(&x, Mode::Eval);
        let yb = back.forward(&x, Mode::Eval);
        assert_eq!(
            ya.data(),
            yb.data(),
            "{kind:?}: eval forward must be bit-identical"
        );
    }

    #[test]
    fn basic_cnn_roundtrips() {
        roundtrip(ModelKind::BasicCnn, (1, 12, 12));
    }

    #[test]
    fn resnet18_roundtrips_with_running_stats() {
        roundtrip(ModelKind::ResNet18, (3, 8, 8));
    }

    #[test]
    fn efficientnet_roundtrips() {
        roundtrip(ModelKind::EfficientNetB0, (3, 8, 8));
    }

    #[test]
    fn quantized_blob_roundtrips_bit_exactly_and_is_smaller() {
        let mut net = trained_ish(ModelKind::BasicCnn, (1, 12, 12));
        let mut f32_buf = Vec::new();
        write_network(&mut f32_buf, &mut net).unwrap();

        let mut q8_buf = Vec::new();
        write_network_dtype(&mut q8_buf, &mut net, Dtype::Q8).unwrap();
        assert!(
            q8_buf.len() * 2 < f32_buf.len(),
            "q8 blob {} should be well under half of f32 {}",
            q8_buf.len(),
            f32_buf.len()
        );
        assert_eq!(
            peek_weight_dtype(&mut q8_buf.as_slice()).unwrap(),
            Dtype::Q8
        );
        assert_eq!(
            peek_weight_dtype(&mut f32_buf.as_slice()).unwrap(),
            Dtype::F32
        );

        // A load of the quantized blob must agree bit-exactly with the
        // in-memory quantization of the same network: both run the same
        // dequantized payload through the same kernels.
        let mut back = read_network(&mut q8_buf.as_slice()).unwrap();
        assert_eq!(back.weight_dtype(), Some(Dtype::Q8));
        net.quantize_weights(Dtype::Q8);
        let x = Tensor::from_fn(&[2, 1, 12, 12], |i| ((i as f32) * 0.2).cos());
        let mut ws = usb_tensor::Workspace::new();
        let ya = net.infer(&x, &mut ws);
        let yb = back.infer(&x, &mut ws);
        assert_eq!(ya.data(), yb.data());

        // An already-quantized network re-serializes its payload verbatim.
        let mut again = Vec::new();
        write_network(&mut again, &mut back).unwrap();
        assert_eq!(again, q8_buf);
    }

    #[test]
    fn requantizing_across_dtypes_is_an_error() {
        let mut net = trained_ish(ModelKind::BasicCnn, (1, 12, 12));
        net.quantize_weights(Dtype::F16);
        let mut buf = Vec::new();
        let err = write_network_dtype(&mut buf, &mut net, Dtype::Q8).unwrap_err();
        assert!(err.to_string().contains("re-quantized"), "{err}");
    }

    #[test]
    fn header_and_record_dtype_must_agree() {
        let mut net = trained_ish(ModelKind::BasicCnn, (1, 12, 12));
        let mut buf = Vec::new();
        write_network_dtype(&mut buf, &mut net, Dtype::F16).unwrap();
        // Header dtype byte sits right after magic+version+architecture.
        let dtype_at = 4 + 2 + 21;
        assert_eq!(buf[dtype_at], Dtype::F16.tag());
        buf[dtype_at] = Dtype::Q8.tag();
        let err = match read_network(&mut buf.as_slice()) {
            Err(err) => err,
            Ok(_) => panic!("mismatched header dtype decoded successfully"),
        };
        assert!(err.to_string().contains("blob"), "{err}");
        buf[dtype_at] = 9;
        let err = match read_network(&mut buf.as_slice()) {
            Err(err) => err,
            Ok(_) => panic!("unknown dtype tag decoded successfully"),
        };
        assert!(err.to_string().contains("dtype tag"), "{err}");
    }

    #[test]
    fn truncated_blob_is_a_clean_error() {
        let mut net = trained_ish(ModelKind::BasicCnn, (1, 12, 12));
        let mut buf = Vec::new();
        write_network(&mut buf, &mut net).unwrap();
        for len in [0, 3, 6, 10, 24, buf.len() / 2, buf.len() - 1] {
            match read_network(&mut &buf[..len]) {
                Err(err) => assert!(matches!(err, IoError::Format(_)), "len {len}: {err}"),
                Ok(_) => panic!("truncated blob of {len} bytes decoded successfully"),
            }
        }
    }

    #[test]
    fn kind_tag_corruption_is_a_clean_error() {
        let mut net = trained_ish(ModelKind::BasicCnn, (1, 12, 12));
        let mut buf = Vec::new();
        write_network(&mut buf, &mut net).unwrap();
        buf[6] = 200; // model kind tag
        match read_network(&mut buf.as_slice()) {
            Err(err) => assert!(err.to_string().contains("model kind"), "{err}"),
            Ok(_) => panic!("corrupt kind tag decoded successfully"),
        }
    }

    #[test]
    fn state_visitation_includes_batchnorm_buffers() {
        let mut net = trained_ish(ModelKind::ResNet18, (3, 8, 8));
        let mut params = 0usize;
        net.visit_params(&mut |_| params += 1);
        let mut state = 0usize;
        let mut bn_tensors = 0usize;
        net.visit_state(&mut |kind, _| {
            state += 1;
            if kind == "batchnorm2d" {
                bn_tensors += 1;
            }
        });
        // Each batch-norm contributes 2 params + 2 buffers, so the state
        // traversal must be strictly longer than the param traversal.
        assert!(state > params, "state {state} <= params {params}");
        assert_eq!(bn_tensors % 4, 0);
        assert!(bn_tensors > 0);
    }
}
