//! # usb-nn
//!
//! A layer-based neural-network library with full backpropagation, built on
//! [`usb_tensor`]. It exists so the Universal Soldier reproduction can train
//! victim CNNs *and* differentiate through them with respect to their
//! **inputs** — the core operation behind trigger reverse-engineering
//! (Neural Cleanse, TABOR) and targeted universal adversarial perturbations
//! (the paper's Alg. 1/2).
//!
//! Design in one paragraph: a [`layer::Layer`] caches whatever its forward
//! pass needs, `backward` consumes the gradient of the loss with respect to
//! its output and returns the gradient with respect to its *input* while
//! accumulating parameter gradients in place. Models are [`compose::Sequential`]
//! stacks (plus residual / squeeze-excite composites) wrapped in a
//! [`models::Network`] that splits feature extractor from classifier head so
//! the latent-backdoor attack can reach penultimate activations.
//!
//! Because forward passes mutate those layer caches, a model cannot be
//! shared across threads — instead every layer is `Clone`
//! ([`layer::Layer::clone_box`]), so the parallel inspection and
//! evaluation loops above this crate hand each worker thread its own
//! `Network` copy ([`train::evaluate`] does this for its eval batches).
//!
//! # Example
//!
//! ```rust
//! use usb_nn::models::{Architecture, ModelKind};
//! use usb_nn::layer::Mode;
//! use usb_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let arch = Architecture::new(ModelKind::BasicCnn, (1, 12, 12), 4).with_width(4);
//! let mut net = arch.build(&mut rng);
//! let x = Tensor::zeros(&[2, 1, 12, 12]);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[2, 4]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compose;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod serde;
pub mod train;

pub use layer::{Layer, Mode};
pub use models::Network;
