//! Dense and depthwise convolution layers.

use crate::layer::{Layer, Mode, Param, ParamSlot, StateSlot};
use rand::Rng;
use usb_tensor::conv::{
    conv2d_backward_ws, conv2d_forward_ref_ws, conv2d_forward_ws, conv2d_input_backward_ref_ws,
    conv2d_input_backward_ws, depthwise_backward, depthwise_forward_ws, depthwise_input_backward,
    depthwise_input_backward_ws, ConvSpec,
};
use usb_tensor::{init, Dtype, QTensor, Tape, Tensor, WeightRef, Workspace};

/// A 2-D convolution `[N, IC, H, W] -> [N, OC, OH, OW]`.
///
/// Weights are Kaiming-uniform initialised with fan-in `IC·KH·KW`. Like
/// [`super::Linear`], the weight can be swapped for a quantized payload,
/// after which the layer is inference-only and the kernels dequantize
/// through the workspace panel cache.
pub struct Conv2d {
    weight: Param, // [OC, IC, KH, KW]; empty while `qweight` is populated
    qweight: Option<QTensor>,
    bias: Option<Param>,
    spec: ConvSpec,
    cached_input: Option<Tensor>,
    // Layer-owned scratch for the *training* path: forward/backward reuse
    // their im2col columns across steps. (`Workspace: Clone` yields an
    // empty arena, so cloning a model never duplicates dead buffers.)
    ws: Workspace,
}

impl Clone for Conv2d {
    /// Clones parameters and geometry; the transient forward cache and
    /// scratch arena start empty (see [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        Conv2d {
            weight: self.weight.clone(),
            qweight: self.qweight.clone(),
            bias: self.bias.clone(),
            spec: self.spec,
            cached_input: None,
            ws: Workspace::new(),
        }
    }
}

impl Conv2d {
    /// Creates a convolution with square kernel `k`, the given stride and
    /// padding, and an optional bias.
    ///
    /// # Panics
    ///
    /// Panics if `in_ch`, `out_ch` or `k` is zero, or `stride` is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(in_ch > 0 && out_ch > 0 && k > 0, "Conv2d: zero dimension");
        let fan_in = in_ch * k * k;
        let weight = Param::new(
            init::kaiming_uniform(&[out_ch, in_ch, k, k], fan_in, rng),
            true,
        );
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_ch]), false));
        Conv2d {
            weight,
            qweight: None,
            bias,
            spec: ConvSpec::new(stride, pad),
            cached_input: None,
            ws: Workspace::new(),
        }
    }

    /// The convolution geometry (stride / padding).
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// Immutable access to the dense weight tensor (e.g. for inspection in
    /// tests). Empty while the layer is quantized.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    fn weight_ref(&self) -> WeightRef<'_> {
        match &self.qweight {
            Some(q) => WeightRef::Quant(q),
            None => WeightRef::Dense(&self.weight.value),
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert!(
            self.qweight.is_none(),
            "Conv2d: training pass on a quantized (inference-only) layer"
        );
        self.cached_input = Some(x.clone());
        conv2d_forward_ws(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            self.spec,
            &mut self.ws,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            self.qweight.is_none(),
            "Conv2d: training pass on a quantized (inference-only) layer"
        );
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward before forward");
        let (gi, gw, gb) =
            conv2d_backward_ws(x, &self.weight.value, grad_out, self.spec, &mut self.ws);
        self.weight.grad.add_assign(&gw);
        if let Some(b) = self.bias.as_mut() {
            b.grad.add_assign(&gb);
        }
        gi
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            self.qweight.is_none(),
            "Conv2d: training pass on a quantized (inference-only) layer"
        );
        // dL/dx depends only on the weight; skipping dL/dW also skips the
        // im2col of the cached input — the dominant transient of the full
        // backward pass.
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward before forward");
        assert_eq!(
            grad_out.shape()[0],
            x.shape()[0],
            "Conv2d: grad_out batch dim mismatch"
        );
        let (h, w) = (x.shape()[2], x.shape()[3]);
        conv2d_input_backward_ws(&self.weight.value, grad_out, h, w, self.spec, &mut self.ws)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        // The dense arm of the ref kernel runs the exact code the dense
        // kernel does; the quantized arm swaps only the panel source.
        conv2d_forward_ref_ws(
            x,
            self.weight_ref(),
            self.bias.as_ref().map(|b| &b.value),
            self.spec,
            ws,
        )
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // dL/dx depends only on the weight; the frame records just the
        // input shape — the geometry the `input_backward` route reads off
        // its cached input.
        tape.push().aux.extend_from_slice(x.shape());
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        assert_eq!(
            grad_out.shape()[0],
            frame.aux[0],
            "Conv2d: grad_out batch dim mismatch"
        );
        let (h, w) = (frame.aux[2], frame.aux[3]);
        let gi = conv2d_input_backward_ref_ws(self.weight_ref(), grad_out, h, w, self.spec, ws);
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        // A quantized weight is invisible to optimisers and weight decay.
        if self.qweight.is_none() {
            f(self.weight.slot());
        }
        if let Some(b) = self.bias.as_mut() {
            f(b.slot());
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        // Always expose the dense weight slot (empty when quantized) so the
        // (kind, tensor) sequence stays aligned with `visit_state_q`.
        f("conv2d", &mut self.weight.value);
        if let Some(b) = self.bias.as_mut() {
            f("conv2d", &mut b.value);
        }
    }

    fn visit_state_q(&mut self, f: &mut dyn FnMut(&'static str, StateSlot<'_>)) {
        f(
            "conv2d",
            StateSlot::Weight {
                dense: &mut self.weight.value,
                grad: &mut self.weight.grad,
                quant: &mut self.qweight,
            },
        );
        if let Some(b) = self.bias.as_mut() {
            f("conv2d", StateSlot::Dense(&mut b.value));
        }
    }

    fn quantize_weights(&mut self, dtype: Dtype) {
        if dtype == Dtype::F32 || self.qweight.is_some() {
            return;
        }
        self.qweight = Some(QTensor::quantize(&self.weight.value, dtype));
        // Free both dense buffers: `Param::new` allocates a full-size grad.
        self.weight.value = Tensor::zeros(&[0]);
        self.weight.grad = Tensor::zeros(&[0]);
    }

    fn param_count(&self) -> usize {
        // Logical counts: a quantized weight still holds OC·IC·KH·KW params.
        let w: usize = match &self.qweight {
            Some(q) => q.len(),
            None => self.weight.value.len(),
        };
        w + self.bias.as_ref().map_or(0, |b| b.value.len())
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// A depthwise 2-D convolution: each channel convolved with its own kernel.
///
/// Used by the EfficientNet-B0 MBConv blocks.
pub struct DepthwiseConv2d {
    weight: Param,
    bias: Option<Param>,
    spec: ConvSpec,
    cached_input: Option<Tensor>,
    ws: Workspace,
}

impl Clone for DepthwiseConv2d {
    /// Clones parameters and geometry; the transient forward cache and
    /// scratch arena start empty (see [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        DepthwiseConv2d {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            spec: self.spec,
            cached_input: None,
            ws: Workspace::new(),
        }
    }
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution over `ch` channels with square kernel
    /// `k`.
    ///
    /// # Panics
    ///
    /// Panics if `ch` or `k` is zero, or `stride` is zero.
    pub fn new(
        ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(ch > 0 && k > 0, "DepthwiseConv2d: zero dimension");
        let weight = Param::new(init::kaiming_uniform(&[ch, 1, k, k], k * k, rng), true);
        let bias = bias.then(|| Param::new(Tensor::zeros(&[ch]), false));
        DepthwiseConv2d {
            weight,
            bias,
            spec: ConvSpec::new(stride, pad),
            cached_input: None,
            ws: Workspace::new(),
        }
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(x.clone());
        depthwise_forward_ws(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            self.spec,
            &mut self.ws,
        )
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("DepthwiseConv2d::backward before forward");
        assert_eq!(
            grad_out.shape()[0],
            x.shape()[0],
            "DepthwiseConv2d: grad_out batch dim mismatch"
        );
        let (h, w) = (x.shape()[2], x.shape()[3]);
        depthwise_input_backward(&self.weight.value, grad_out, h, w, self.spec)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        depthwise_forward_ws(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            self.spec,
            ws,
        )
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        tape.push().aux.extend_from_slice(x.shape());
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        assert_eq!(
            grad_out.shape()[0],
            frame.aux[0],
            "DepthwiseConv2d: grad_out batch dim mismatch"
        );
        let (h, w) = (frame.aux[2], frame.aux[3]);
        let gi = depthwise_input_backward_ws(&self.weight.value, grad_out, h, w, self.spec, ws);
        tape.recycle(frame);
        gi
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("DepthwiseConv2d::backward before forward");
        let (gi, gw, gb) = depthwise_backward(x, &self.weight.value, grad_out, self.spec);
        self.weight.grad.add_assign(&gw);
        if let Some(b) = self.bias.as_mut() {
            b.grad.add_assign(&gb);
        }
        gi
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        f(self.weight.slot());
        if let Some(b) = self.bias.as_mut() {
            f(b.slot());
        }
    }

    fn param_count(&self) -> usize {
        self.weight.value.len() + self.bias.as_ref().map_or(0, |b| b.value.len())
    }

    fn name(&self) -> &'static str {
        "depthwise_conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv_shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng);
        assert_eq!(c.param_count(), 8 * 3 * 3 * 3 + 8);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
        let gi = c.backward(&Tensor::ones(y.shape()));
        assert_eq!(gi.shape(), x.shape());
    }

    #[test]
    fn backward_accumulates_until_zero_grad() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = c.forward(&x, Mode::Train);
        let _ = c.backward(&Tensor::ones(y.shape()));
        let mut g1 = 0.0;
        c.visit_params(&mut |s| g1 = s.grad.data()[0]);
        let _ = c.forward(&x, Mode::Train);
        let _ = c.backward(&Tensor::ones(y.shape()));
        let mut g2 = 0.0;
        c.visit_params(&mut |s| g2 = s.grad.data()[0]);
        assert!((g2 - 2.0 * g1).abs() < 1e-5, "grad must accumulate");
        c.zero_grad();
        let mut g3 = -1.0;
        c.visit_params(&mut |s| g3 = s.grad.data()[0]);
        assert_eq!(g3, 0.0);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        let _ = c.backward(&Tensor::ones(&[1, 1, 2, 2]));
    }

    /// Small integers are exact in f16, so quantized inference and the
    /// tape-gradient path must be bit-identical to the dense ones.
    #[test]
    fn quantized_conv_matches_dense_on_f16_exact_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut c = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        c.visit_params(&mut |slot| {
            *slot.value = Tensor::from_fn(slot.value.shape(), |i| ((i % 11) as f32) - 5.0);
        });
        let x = Tensor::from_fn(&[2, 2, 6, 6], |i| ((i % 7) as f32) * 0.5 - 1.5);
        let mut ws = Workspace::default();
        let dense_y = c.infer(&x, &mut ws);

        let mut q = c.clone();
        q.quantize_weights(Dtype::F16);
        assert_eq!(q.param_count(), c.param_count());
        let qy = q.infer(&x, &mut ws);
        assert_eq!(qy.data(), dense_y.data());

        let mut tape = Tape::default();
        let _ = c.infer_recording(&x, &mut tape, &mut ws);
        let g = Tensor::from_fn(dense_y.shape(), |i| ((i % 5) as f32) - 2.0);
        let dense_gi = c.grad(&g, &mut tape, &mut ws);
        let _ = q.infer_recording(&x, &mut tape, &mut ws);
        let qgi = q.grad(&g, &mut tape, &mut ws);
        assert_eq!(qgi.data(), dense_gi.data());
    }

    #[test]
    #[should_panic(expected = "quantized")]
    fn quantized_conv_rejects_training_forward() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut c = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng);
        c.quantize_weights(Dtype::Q8);
        let _ = c.forward(&Tensor::zeros(&[1, 1, 4, 4]), Mode::Train);
    }

    #[test]
    fn depthwise_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = DepthwiseConv2d::new(4, 3, 2, 1, true, &mut rng);
        let x = Tensor::zeros(&[1, 4, 8, 8]);
        let y = d.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
        let gi = d.backward(&Tensor::ones(y.shape()));
        assert_eq!(gi.shape(), x.shape());
        assert_eq!(d.param_count(), 4 * 9 + 4);
    }
}
