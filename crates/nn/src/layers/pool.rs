//! Pooling layers wrapping the kernels in [`usb_tensor::pool`].

use crate::layer::{Layer, Mode, ParamSlot};
use usb_tensor::{pool, Tape, Tensor, Workspace};

/// Average pooling over `k x k` windows with the given stride.
#[derive(Clone)]
pub struct AvgPool2d {
    k: usize,
    stride: usize,
    cached_hw: Option<(usize, usize)>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0, "AvgPool2d: zero window or stride");
        AvgPool2d {
            k,
            stride,
            cached_hw: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cached_hw = Some((x.shape()[2], x.shape()[3]));
        pool::avg_pool2d_forward(x, self.k, self.stride)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (h, w) = self.cached_hw.expect("AvgPool2d::backward before forward");
        pool::avg_pool2d_backward(grad_out, h, w, self.k, self.stride)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        pool::avg_pool2d_forward_ws(x, self.k, self.stride, ws)
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.push();
        frame.aux.push(x.shape()[2]);
        frame.aux.push(x.shape()[3]);
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        let (h, w) = (frame.aux[0], frame.aux[1]);
        let gi = pool::avg_pool2d_backward_ws(grad_out, h, w, self.k, self.stride, ws);
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Max pooling over `k x k` windows with the given stride.
pub struct MaxPool2d {
    k: usize,
    stride: usize,
    cached: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl Clone for MaxPool2d {
    /// Clones the geometry; the transient argmax cache starts empty (see
    /// [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        MaxPool2d {
            k: self.k,
            stride: self.stride,
            cached: None,
        }
    }
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `stride` is zero.
    pub fn new(k: usize, stride: usize) -> Self {
        assert!(k > 0 && stride > 0, "MaxPool2d: zero window or stride");
        MaxPool2d {
            k,
            stride,
            cached: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (y, arg) = pool::max_pool2d_forward(x, self.k, self.stride);
        self.cached = Some((arg, x.shape().to_vec()));
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (arg, shape) = self
            .cached
            .as_ref()
            .expect("MaxPool2d::backward before forward");
        pool::max_pool2d_backward(grad_out, arg, shape)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        // Same window scan as `forward`, minus the argmax routing table
        // only the backward pass needs.
        pool::max_pool2d_infer(x, self.k, self.stride, ws)
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // The gradient routes through the argmax table, so the recording
        // scan computes it — the same comparisons as `forward`, so values
        // *and* routing are bit-identical. The frame stores the argmax
        // indices followed by the input shape.
        let frame = tape.push();
        let mut arg = std::mem::take(&mut frame.aux); // reuse frame capacity
        let y = pool::max_pool2d_forward_rec(x, self.k, self.stride, ws, &mut arg);
        arg.extend_from_slice(x.shape());
        frame.aux = arg;
        y
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        let (argmax, shape) = frame.aux.split_at(frame.aux.len() - 4);
        let gi = pool::max_pool2d_backward_ws(grad_out, argmax, shape, ws);
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Default, Clone)]
pub struct GlobalAvgPool {
    cached_hw: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cached_hw = Some((x.shape()[2], x.shape()[3]));
        pool::global_avg_pool_forward(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (h, w) = self
            .cached_hw
            .expect("GlobalAvgPool::backward before forward");
        pool::global_avg_pool_backward(grad_out, h, w)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        pool::global_avg_pool_forward_ws(x, ws)
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.push();
        frame.aux.push(x.shape()[2]);
        frame.aux.push(x.shape()[3]);
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        let (h, w) = (frame.aux[0], frame.aux[1]);
        let gi = pool::global_avg_pool_backward_ws(grad_out, h, w, ws);
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_layers_roundtrip_shapes() {
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i as f32).sin());
        let mut ap = AvgPool2d::new(2, 2);
        let y = ap.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
        assert_eq!(ap.backward(&Tensor::ones(y.shape())).shape(), x.shape());

        let mut mp = MaxPool2d::new(2, 2);
        let y = mp.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
        assert_eq!(mp.backward(&Tensor::ones(y.shape())).shape(), x.shape());

        let mut gp = GlobalAvgPool::new();
        let y = gp.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(gp.backward(&Tensor::ones(y.shape())).shape(), x.shape());
    }

    #[test]
    fn max_pool_grad_is_sparse() {
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let mut mp = MaxPool2d::new(2, 2);
        let y = mp.forward(&x, Mode::Eval);
        let g = mp.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.sum(), 4.0);
        assert_eq!(g.data().iter().filter(|&&v| v != 0.0).count(), 4);
    }
}
