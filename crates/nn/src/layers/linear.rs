//! Fully-connected layer and flattening.

use crate::layer::{Layer, Mode, Param, ParamSlot};
use rand::Rng;
use usb_tensor::{init, ops, Tape, Tensor, Workspace};

/// A dense layer `y = x Wᵀ + b` mapping `[N, in] -> [N, out]`.
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cached_input: Option<Tensor>,
}

impl Clone for Linear {
    /// Clones parameters; the transient forward cache starts empty (see
    /// [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        Linear {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            cached_input: None,
        }
    }
}

impl Linear {
    /// Creates a Kaiming-initialised dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "Linear: zero dimension"
        );
        Linear {
            weight: Param::new(
                init::kaiming_uniform(&[out_features, in_features], in_features, rng),
                true,
            ),
            bias: Param::new(Tensor::zeros(&[out_features]), false),
            cached_input: None,
        }
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[1]
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear: input must be [N, in]");
        assert_eq!(
            x.shape()[1],
            self.in_features(),
            "Linear: expected {} input features, got {}",
            self.in_features(),
            x.shape()[1]
        );
        self.cached_input = Some(x.clone());
        let mut y = ops::matmul_transb(x, &self.weight.value);
        let out = self.out_features();
        let n = x.shape()[0];
        let bd = self.bias.value.data().to_vec();
        let yd = y.data_mut();
        for i in 0..n {
            for (v, &b) in yd[i * out..(i + 1) * out].iter_mut().zip(&bd) {
                *v += b;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        // dL/dW = gᵀ x ; dL/db = column sums of g ; dL/dx = g W.
        let gw = ops::matmul_transa(grad_out, x);
        self.weight.grad.add_assign(&gw);
        let (n, out) = (grad_out.shape()[0], grad_out.shape()[1]);
        for i in 0..n {
            for j in 0..out {
                self.bias.grad.data_mut()[j] += grad_out.data()[i * out + j];
            }
        }
        ops::matmul(grad_out, &self.weight.value)
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        // dL/dx = g W — the dL/dW and dL/db terms of `backward` are
        // skipped, not needed for input-space optimisation.
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        assert_eq!(
            grad_out.shape()[0],
            x.shape()[0],
            "Linear: grad_out batch dim mismatch"
        );
        ops::matmul(grad_out, &self.weight.value)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear: input must be [N, in]");
        assert_eq!(
            x.shape()[1],
            self.in_features(),
            "Linear: expected {} input features, got {}",
            self.in_features(),
            x.shape()[1]
        );
        let (n, out) = (x.shape()[0], self.out_features());
        let mut y = ws.take_dirty(n * out);
        // x @ Wᵀ with W packed k-major once per weight version and reused
        // across calls. Each output element is the same ascending-`k` dot
        // product `Σ x[i,k]·W[j,k]` that `forward`'s transb kernel computes,
        // so results stay bit-identical.
        let wt = ws.packed_transpose(&self.weight.value, out, self.in_features());
        ops::matmul_into(x.data(), wt, n, self.in_features(), out, &mut y);
        let bd = self.bias.value.data();
        for i in 0..n {
            for (v, &b) in y[i * out..(i + 1) * out].iter_mut().zip(bd) {
                *v += b;
            }
        }
        Tensor::from_vec(y, &[n, out])
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // The input gradient `g W` needs no activations — only the batch
        // size for the shape check `input_backward` also performs.
        tape.push().aux.extend_from_slice(x.shape());
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        assert_eq!(
            grad_out.shape()[0],
            frame.aux[0],
            "Linear: grad_out batch dim mismatch"
        );
        let (n, out, inf) = (grad_out.shape()[0], self.out_features(), self.in_features());
        assert_eq!(grad_out.shape()[1], out, "Linear: grad_out width mismatch");
        // dL/dx = g W — the same GEMM kernel `input_backward`'s
        // `ops::matmul` wraps, so bit-identical.
        let mut gi = ws.take_dirty(n * inf);
        ops::matmul_into(
            grad_out.data(),
            self.weight.value.data(),
            n,
            out,
            inf,
            &mut gi,
        );
        tape.recycle(frame);
        Tensor::from_vec(gi, &[n, inf])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        f(self.weight.slot());
        f(self.bias.slot());
    }

    fn param_count(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Reshapes `[N, C, H, W]` (or any rank ≥ 2) to `[N, C·H·W]`; the backward
/// pass restores the cached shape.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten: need at least rank-2 input");
        self.cached_shape = Some(x.shape().to_vec());
        let n = x.shape()[0];
        x.reshape(&[n, x.len() / n])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("Flatten::backward before forward");
        grad_out.reshape(shape)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten: need at least rank-2 input");
        let n = x.shape()[0];
        // A reshape is a copy in this tensor library; drawing the copy from
        // the workspace keeps the inference path allocation-free.
        let mut out = ws.take_dirty(x.len());
        out.copy_from_slice(x.data());
        Tensor::from_vec(out, &[n, x.len() / n])
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        tape.push().aux.extend_from_slice(x.shape());
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        assert_eq!(
            grad_out.len(),
            frame.aux.iter().product::<usize>(),
            "Flatten: grad length does not match the recorded shape"
        );
        // Restore the recorded shape — a copy, as `backward`'s reshape is.
        let mut out = ws.take_dirty(grad_out.len());
        out.copy_from_slice(grad_out.data());
        let gi = Tensor::from_vec(out, &frame.aux);
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        // Overwrite with known weights.
        l.visit_params(&mut |slot| {
            if slot.value.shape() == [2usize, 2] {
                *slot.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            } else {
                *slot.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
            }
        });
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x, Mode::Eval);
        // y = [1+2+0.5, 3+4-0.5]
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.7, 0.1, 0.9, -0.4], &[2, 3]);
        let y = l.forward(&x, Mode::Train);
        let gi = l.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for flat in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (l.forward(&xp, Mode::Train).sum() - l.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!(
                (num - gi.data()[flat]).abs() < 1e-2,
                "input grad mismatch at {flat}"
            );
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 12]);
        let g = f.backward(&Tensor::ones(&[2, 12]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn linear_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(3, 2, &mut rng);
        let _ = l.forward(&Tensor::zeros(&[1, 4]), Mode::Eval);
    }
}
