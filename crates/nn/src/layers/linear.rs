//! Fully-connected layer and flattening.

use crate::layer::{Layer, Mode, Param, ParamSlot, StateSlot};
use rand::Rng;
use usb_tensor::{init, ops, Dtype, QTensor, Tape, Tensor, Workspace};

/// A dense layer `y = x Wᵀ + b` mapping `[N, in] -> [N, out]`.
///
/// The weight can be swapped for a quantized payload
/// ([`Layer::quantize_weights`] or a low-precision bundle load), after
/// which the layer is inference-only: `infer`/`grad` dequantize through
/// the workspace panel cache, while the training entry points panic.
pub struct Linear {
    weight: Param, // [out, in]; empty while `qweight` is populated
    qweight: Option<QTensor>,
    bias: Param, // [out], always dense
    cached_input: Option<Tensor>,
}

impl Clone for Linear {
    /// Clones parameters; the transient forward cache starts empty (see
    /// [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        Linear {
            weight: self.weight.clone(),
            qweight: self.qweight.clone(),
            bias: self.bias.clone(),
            cached_input: None,
        }
    }
}

impl Linear {
    /// Creates a Kaiming-initialised dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "Linear: zero dimension"
        );
        Linear {
            weight: Param::new(
                init::kaiming_uniform(&[out_features, in_features], in_features, rng),
                true,
            ),
            qweight: None,
            bias: Param::new(Tensor::zeros(&[out_features]), false),
            cached_input: None,
        }
    }

    fn weight_shape(&self) -> &[usize] {
        match &self.qweight {
            Some(q) => q.shape(),
            None => self.weight.value.shape(),
        }
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.weight_shape()[0]
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.weight_shape()[1]
    }

    /// The quantized weight payload, if the layer is in low-precision
    /// inference mode.
    pub fn qweight(&self) -> Option<&QTensor> {
        self.qweight.as_ref()
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert!(
            self.qweight.is_none(),
            "Linear: training pass on a quantized (inference-only) layer"
        );
        assert_eq!(x.ndim(), 2, "Linear: input must be [N, in]");
        assert_eq!(
            x.shape()[1],
            self.in_features(),
            "Linear: expected {} input features, got {}",
            self.in_features(),
            x.shape()[1]
        );
        self.cached_input = Some(x.clone());
        let mut y = ops::matmul_transb(x, &self.weight.value);
        let out = self.out_features();
        let n = x.shape()[0];
        let bd = self.bias.value.data().to_vec();
        let yd = y.data_mut();
        for i in 0..n {
            for (v, &b) in yd[i * out..(i + 1) * out].iter_mut().zip(&bd) {
                *v += b;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            self.qweight.is_none(),
            "Linear: training pass on a quantized (inference-only) layer"
        );
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        // dL/dW = gᵀ x ; dL/db = column sums of g ; dL/dx = g W.
        let gw = ops::matmul_transa(grad_out, x);
        self.weight.grad.add_assign(&gw);
        let (n, out) = (grad_out.shape()[0], grad_out.shape()[1]);
        for i in 0..n {
            for j in 0..out {
                self.bias.grad.data_mut()[j] += grad_out.data()[i * out + j];
            }
        }
        ops::matmul(grad_out, &self.weight.value)
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            self.qweight.is_none(),
            "Linear: training pass on a quantized (inference-only) layer"
        );
        // dL/dx = g W — the dL/dW and dL/db terms of `backward` are
        // skipped, not needed for input-space optimisation.
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward before forward");
        assert_eq!(
            grad_out.shape()[0],
            x.shape()[0],
            "Linear: grad_out batch dim mismatch"
        );
        ops::matmul(grad_out, &self.weight.value)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear: input must be [N, in]");
        assert_eq!(
            x.shape()[1],
            self.in_features(),
            "Linear: expected {} input features, got {}",
            self.in_features(),
            x.shape()[1]
        );
        let (n, out, inf) = (x.shape()[0], self.out_features(), self.in_features());
        let mut y = ws.take_dirty(n * out);
        // x @ Wᵀ with W packed k-major once per weight version and reused
        // across calls. Each output element is the same ascending-`k` dot
        // product `Σ x[i,k]·W[j,k]` that `forward`'s transb kernel computes,
        // so results stay bit-identical. A quantized weight dequantizes into
        // the same panel cache once per content-id — steady-state calls hit
        // an identical unit-stride f32 panel.
        let wt = match &self.qweight {
            None => ws.packed_transpose(&self.weight.value, out, inf),
            Some(q) => ws.packed_dequant(q, out, inf),
        };
        ops::matmul_into(x.data(), wt, n, inf, out, &mut y);
        let bd = self.bias.value.data();
        for i in 0..n {
            for (v, &b) in y[i * out..(i + 1) * out].iter_mut().zip(bd) {
                *v += b;
            }
        }
        Tensor::from_vec(y, &[n, out])
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // The input gradient `g W` needs no activations — only the batch
        // size for the shape check `input_backward` also performs.
        tape.push().aux.extend_from_slice(x.shape());
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        assert_eq!(
            grad_out.shape()[0],
            frame.aux[0],
            "Linear: grad_out batch dim mismatch"
        );
        let (n, out, inf) = (grad_out.shape()[0], self.out_features(), self.in_features());
        assert_eq!(grad_out.shape()[1], out, "Linear: grad_out width mismatch");
        // dL/dx = g W — the same GEMM kernel `input_backward`'s
        // `ops::matmul` wraps, so bit-identical. The quantized path reads W
        // from a natural-order dequant panel instead; `gi` is checked out
        // first so no workspace buffer is taken while the panel is borrowed.
        let mut gi = ws.take_dirty(n * inf);
        let wd: &[f32] = match &self.qweight {
            None => self.weight.value.data(),
            Some(q) => ws.dequant_panel(q),
        };
        ops::matmul_into(grad_out.data(), wd, n, out, inf, &mut gi);
        tape.recycle(frame);
        Tensor::from_vec(gi, &[n, inf])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        // A quantized weight is invisible to optimisers and weight decay —
        // its dense storage is empty and must not be updated or counted.
        if self.qweight.is_none() {
            f(self.weight.slot());
        }
        f(self.bias.slot());
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        // Always expose the dense weight slot (empty when quantized) so the
        // (kind, tensor) sequence stays aligned with `visit_state_q`.
        f("linear", &mut self.weight.value);
        f("linear", &mut self.bias.value);
    }

    fn visit_state_q(&mut self, f: &mut dyn FnMut(&'static str, StateSlot<'_>)) {
        f(
            "linear",
            StateSlot::Weight {
                dense: &mut self.weight.value,
                grad: &mut self.weight.grad,
                quant: &mut self.qweight,
            },
        );
        f("linear", StateSlot::Dense(&mut self.bias.value));
    }

    fn quantize_weights(&mut self, dtype: Dtype) {
        if dtype == Dtype::F32 || self.qweight.is_some() {
            return;
        }
        self.qweight = Some(QTensor::quantize(&self.weight.value, dtype));
        // Free both dense buffers: `Param::new` allocates a full-size grad.
        self.weight.value = Tensor::zeros(&[0]);
        self.weight.grad = Tensor::zeros(&[0]);
    }

    fn param_count(&self) -> usize {
        // Logical counts: a quantized weight still holds out·in parameters.
        let w: usize = self.weight_shape().iter().product();
        w + self.bias.value.len()
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Reshapes `[N, C, H, W]` (or any rank ≥ 2) to `[N, C·H·W]`; the backward
/// pass restores the cached shape.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten: need at least rank-2 input");
        self.cached_shape = Some(x.shape().to_vec());
        let n = x.shape()[0];
        x.reshape(&[n, x.len() / n])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("Flatten::backward before forward");
        grad_out.reshape(shape)
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert!(x.ndim() >= 2, "Flatten: need at least rank-2 input");
        let n = x.shape()[0];
        // A reshape is a copy in this tensor library; drawing the copy from
        // the workspace keeps the inference path allocation-free.
        let mut out = ws.take_dirty(x.len());
        out.copy_from_slice(x.data());
        Tensor::from_vec(out, &[n, x.len() / n])
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        tape.push().aux.extend_from_slice(x.shape());
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        assert_eq!(
            grad_out.len(),
            frame.aux.iter().product::<usize>(),
            "Flatten: grad length does not match the recorded shape"
        );
        // Restore the recorded shape — a copy, as `backward`'s reshape is.
        let mut out = ws.take_dirty(grad_out.len());
        out.copy_from_slice(grad_out.data());
        let gi = Tensor::from_vec(out, &frame.aux);
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        // Overwrite with known weights.
        l.visit_params(&mut |slot| {
            if slot.value.shape() == [2usize, 2] {
                *slot.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            } else {
                *slot.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
            }
        });
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x, Mode::Eval);
        // y = [1+2+0.5, 3+4-0.5]
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.7, 0.1, 0.9, -0.4], &[2, 3]);
        let y = l.forward(&x, Mode::Train);
        let gi = l.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for flat in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (l.forward(&xp, Mode::Train).sum() - l.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!(
                (num - gi.data()[flat]).abs() < 1e-2,
                "input grad mismatch at {flat}"
            );
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = f.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 12]);
        let g = f.backward(&Tensor::ones(&[2, 12]));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn linear_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = Linear::new(3, 2, &mut rng);
        let _ = l.forward(&Tensor::zeros(&[1, 4]), Mode::Eval);
    }

    /// Small integers are exact in f16, so the quantized inference and
    /// tape-gradient paths must be bit-identical to the dense ones.
    #[test]
    fn quantized_linear_matches_dense_on_f16_exact_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(4, 3, &mut rng);
        l.visit_params(&mut |slot| {
            let ints = Tensor::from_fn(slot.value.shape(), |i| (i as f32) - 5.0);
            *slot.value = ints;
        });
        let x = Tensor::from_fn(&[2, 4], |i| (i as f32) * 0.25 - 1.0);
        let mut ws = Workspace::default();
        let dense_y = l.infer(&x, &mut ws);

        let mut q = l.clone();
        q.quantize_weights(Dtype::F16);
        assert_eq!(q.out_features(), 3);
        assert_eq!(q.in_features(), 4);
        assert_eq!(q.param_count(), l.param_count());
        let qy = q.infer(&x, &mut ws);
        assert_eq!(qy.data(), dense_y.data());

        let mut tape = Tape::default();
        let _ = l.infer_recording(&x, &mut tape, &mut ws);
        let g = Tensor::from_fn(&[2, 3], |i| 1.0 + i as f32);
        let dense_gi = l.grad(&g, &mut tape, &mut ws);
        let _ = q.infer_recording(&x, &mut tape, &mut ws);
        let qgi = q.grad(&g, &mut tape, &mut ws);
        assert_eq!(qgi.data(), dense_gi.data());
    }

    #[test]
    fn quantized_linear_hides_weight_from_optimizers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Linear::new(3, 2, &mut rng);
        l.quantize_weights(Dtype::Q8);
        let mut slots = 0usize;
        l.visit_params(&mut |slot| {
            assert_eq!(slot.value.shape(), [2usize], "only the bias is left");
            slots += 1;
        });
        assert_eq!(slots, 1);
        // The state walk still exposes an aligned weight slot.
        let mut kinds = Vec::new();
        l.visit_state_q(&mut |kind, slot| {
            kinds.push((kind, matches!(slot, StateSlot::Weight { .. })));
        });
        assert_eq!(kinds, [("linear", true), ("linear", false)]);
    }

    #[test]
    #[should_panic(expected = "quantized")]
    fn quantized_linear_rejects_training_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Linear::new(3, 2, &mut rng);
        l.quantize_weights(Dtype::F16);
        let _ = l.forward(&Tensor::zeros(&[1, 3]), Mode::Train);
    }
}
