//! Batch normalisation over `[N, C, H, W]` activations.

use crate::layer::{Layer, Mode, Param, ParamSlot};
use usb_tensor::{Tape, Tensor, Workspace};

/// 2-D batch normalisation with learned affine parameters and running
/// statistics.
///
/// In [`Mode::Train`] the layer normalises with batch statistics and updates
/// exponential running averages; in [`Mode::Eval`] it applies the frozen
/// affine transform built from the running statistics. `backward` works in
/// both modes — defenses differentiate through eval-mode models, where the
/// layer is an elementwise affine map.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    // Cache for backward.
    cached: Option<BnCache>,
}

#[derive(Clone)]
struct BnCache {
    mode: Mode,
    xhat: Tensor,
    inv_std: Vec<f32>, // per channel
    shape: Vec<usize>,
}

impl Clone for BatchNorm2d {
    /// Clones parameters and running statistics; the transient backward
    /// cache starts empty (see [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        BatchNorm2d {
            gamma: self.gamma.clone(),
            beta: self.beta.clone(),
            running_mean: self.running_mean.clone(),
            running_var: self.running_var.clone(),
            momentum: self.momentum,
            eps: self.eps,
            cached: None,
        }
    }
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `ch` channels with the conventional
    /// momentum 0.1 and epsilon 1e-5.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is zero.
    pub fn new(ch: usize) -> Self {
        assert!(ch > 0, "BatchNorm2d: zero channels");
        BatchNorm2d {
            gamma: Param::new(Tensor::ones(&[ch]), false),
            beta: Param::new(Tensor::zeros(&[ch]), false),
            running_mean: Tensor::zeros(&[ch]),
            running_var: Tensor::ones(&[ch]),
            momentum: 0.1,
            eps: 1e-5,
            cached: None,
        }
    }

    /// Running mean per channel (for inspection).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance per channel (for inspection).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    fn channel_count(&self) -> usize {
        self.gamma.value.len()
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.ndim(), 4, "BatchNorm2d: input must be [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.channel_count(), "BatchNorm2d: channel mismatch");
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut out = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut inv_std = vec![0.0f32; c];
        #[allow(clippy::needless_range_loop)] // ch addresses strided planes, not one slice
        for ch in 0..c {
            let (mean, var) = match mode {
                Mode::Train => {
                    let mut s = 0.0f32;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        s += x.data()[base..base + plane].iter().sum::<f32>();
                    }
                    let mean = s / m;
                    let mut v = 0.0f32;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for &xv in &x.data()[base..base + plane] {
                            let d = xv - mean;
                            v += d * d;
                        }
                    }
                    let var = v / m;
                    // Update running statistics.
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                    (mean, var)
                }
                Mode::Eval => (self.running_mean.data()[ch], self.running_var.data()[ch]),
            };
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std[ch] = istd;
            let g = self.gamma.value.data()[ch];
            let b = self.beta.value.data()[ch];
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    let xh = (x.data()[base + j] - mean) * istd;
                    xhat.data_mut()[base + j] = xh;
                    out.data_mut()[base + j] = g * xh + b;
                }
            }
        }
        self.cached = Some(BnCache {
            mode,
            xhat,
            inv_std,
            shape: x.shape().to_vec(),
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cached
            .as_ref()
            .expect("BatchNorm2d::backward before forward");
        assert_eq!(
            grad_out.shape(),
            &cache.shape[..],
            "BatchNorm2d: grad shape mismatch"
        );
        let (n, c, h, w) = (
            cache.shape[0],
            cache.shape[1],
            cache.shape[2],
            cache.shape[3],
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut gi = Tensor::zeros(grad_out.shape());
        for ch in 0..c {
            let g = self.gamma.value.data()[ch];
            let istd = cache.inv_std[ch];
            // Accumulate dgamma / dbeta in both modes.
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    let go = grad_out.data()[base + j];
                    dgamma += go * cache.xhat.data()[base + j];
                    dbeta += go;
                }
            }
            self.gamma.grad.data_mut()[ch] += dgamma;
            self.beta.grad.data_mut()[ch] += dbeta;
            match cache.mode {
                Mode::Eval => {
                    // Frozen affine transform: dx = g · istd · dy.
                    let k = g * istd;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for j in 0..plane {
                            gi.data_mut()[base + j] = k * grad_out.data()[base + j];
                        }
                    }
                }
                Mode::Train => {
                    // dx = (g·istd/m) · (m·dy − Σdy − x̂·Σ(dy·x̂))
                    let sum_dy = dbeta;
                    let sum_dy_xhat = dgamma;
                    let k = g * istd / m;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for j in 0..plane {
                            let dy = grad_out.data()[base + j];
                            let xh = cache.xhat.data()[base + j];
                            gi.data_mut()[base + j] = k * (m * dy - sum_dy - xh * sum_dy_xhat);
                        }
                    }
                }
            }
        }
        gi
    }

    fn input_backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cached
            .as_ref()
            .expect("BatchNorm2d::backward before forward");
        assert_eq!(
            grad_out.shape(),
            &cache.shape[..],
            "BatchNorm2d: grad shape mismatch"
        );
        let (n, c, plane) = (
            cache.shape[0],
            cache.shape[1],
            cache.shape[2] * cache.shape[3],
        );
        let m = (n * plane) as f32;
        let mut gi = Tensor::zeros(grad_out.shape());
        for ch in 0..c {
            let g = self.gamma.value.data()[ch];
            let istd = cache.inv_std[ch];
            match cache.mode {
                Mode::Eval => {
                    // dx = g·istd·dy needs no batch sums at all: skip the
                    // dgamma/dbeta accumulation entirely.
                    let k = g * istd;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for j in 0..plane {
                            gi.data_mut()[base + j] = k * grad_out.data()[base + j];
                        }
                    }
                }
                Mode::Train => {
                    // Train-mode dx needs Σdy and Σ(dy·x̂): compute them as
                    // locals — same loop order as `backward`, so the input
                    // gradient is bit-identical — without accumulating
                    // into the parameter-gradient slots.
                    let mut dgamma = 0.0f32;
                    let mut dbeta = 0.0f32;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for j in 0..plane {
                            let go = grad_out.data()[base + j];
                            dgamma += go * cache.xhat.data()[base + j];
                            dbeta += go;
                        }
                    }
                    let k = g * istd / m;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for j in 0..plane {
                            let dy = grad_out.data()[base + j];
                            let xh = cache.xhat.data()[base + j];
                            gi.data_mut()[base + j] = k * (m * dy - dbeta - xh * dgamma);
                        }
                    }
                }
            }
        }
        gi
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.ndim(), 4, "BatchNorm2d: input must be [N,C,H,W]");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.channel_count(), "BatchNorm2d: channel mismatch");
        let plane = h * w;
        let mut out = ws.take_dirty(x.len());
        let xd = x.data();
        for ch in 0..c {
            // Same per-element arithmetic as the eval branch of `forward`
            // (`xh = (x − mean)·istd; y = g·xh + b`), so bit-identical.
            let mean = self.running_mean.data()[ch];
            let var = self.running_var.data()[ch];
            let istd = 1.0 / (var + self.eps).sqrt();
            let g = self.gamma.value.data()[ch];
            let b = self.beta.value.data()[ch];
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    let xh = (xd[base + j] - mean) * istd;
                    out[base + j] = g * xh + b;
                }
            }
        }
        Tensor::from_vec(out, x.shape())
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // Eval-mode batch norm is a frozen affine map: its input gradient
        // needs only the running statistics (read from `&self`) and the
        // shape — no activation copy.
        tape.push().aux.extend_from_slice(x.shape());
        self.infer(x, ws)
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        assert_eq!(
            grad_out.shape(),
            &frame.aux[..],
            "BatchNorm2d: grad shape mismatch"
        );
        let (n, c, plane) = (frame.aux[0], frame.aux[1], frame.aux[2] * frame.aux[3]);
        let mut gi = ws.take_dirty(grad_out.len());
        let god = grad_out.data();
        for ch in 0..c {
            // `istd` recomputed from the running statistics with the same
            // arithmetic the eval forward used, so `k` — and the gradient —
            // is bit-identical to `input_backward`'s eval branch.
            let var = self.running_var.data()[ch];
            let istd = 1.0 / (var + self.eps).sqrt();
            let k = self.gamma.value.data()[ch] * istd;
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    gi[base + j] = k * god[base + j];
                }
            }
        }
        let gi = Tensor::from_vec(gi, &frame.aux);
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamSlot<'_>)) {
        f(self.gamma.slot());
        f(self.beta.slot());
    }

    fn param_count(&self) -> usize {
        self.gamma.value.len() + self.beta.value.len()
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&'static str, &mut Tensor)) {
        // Running statistics are state but not parameters: eval-mode
        // forwards are a function of them, so persistence must carry them.
        f("batchnorm2d", &mut self.gamma.value);
        f("batchnorm2d", &mut self.beta.value);
        f("batchnorm2d", &mut self.running_mean);
        f("batchnorm2d", &mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        Tensor::from_fn(&[2, 3, 2, 2], |i| ((i * 7 % 11) as f32) * 0.3 - 1.0)
    }

    #[test]
    fn train_forward_normalises_batch() {
        let mut bn = BatchNorm2d::new(3);
        let x = sample();
        let y = bn.forward(&x, Mode::Train);
        // Per channel, output should have ~zero mean and ~unit variance.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for n in 0..2 {
                for j in 0..4 {
                    vals.push(y.data()[(n * 3 + ch) * 4 + j]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "ch {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "ch {ch} var {var}");
        }
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm2d::new(3);
        let x = sample().add_scalar(5.0);
        for _ in 0..60 {
            let _ = bn.forward(&x, Mode::Train);
        }
        // After many updates the running mean approaches the batch mean ≈ 5ish.
        assert!(bn.running_mean().mean() > 4.0);
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![2.0, 2.0, 2.0, 2.0], &[1, 1, 2, 2]);
        // Untouched running stats: mean 0, var 1 -> y = x (gamma=1, beta=0).
        let y = bn.forward(&x, Mode::Eval);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn train_gradient_matches_finite_differences() {
        let x = sample();
        let go = Tensor::from_fn(x.shape(), |i| ((i % 5) as f32) * 0.25 - 0.5);
        let mut bn = BatchNorm2d::new(3);
        let _ = bn.forward(&x, Mode::Train);
        let gi = bn.backward(&go);
        let eps = 1e-2;
        for &flat in &[0usize, 5, 13, 22] {
            // Fresh layers so running stats do not drift between evaluations.
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut bnp = BatchNorm2d::new(3);
            let mut bnm = BatchNorm2d::new(3);
            let fp = bnp.forward(&xp, Mode::Train).dot(&go);
            let fm = bnm.forward(&xm, Mode::Train).dot(&go);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gi.data()[flat]).abs() < 2e-2,
                "flat {flat}: num={num} ana={}",
                gi.data()[flat]
            );
        }
    }

    #[test]
    fn eval_gradient_is_affine_scale() {
        let mut bn = BatchNorm2d::new(2);
        // Set distinctive running stats.
        bn.running_var = Tensor::from_vec(vec![4.0, 0.25], &[2]);
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let _ = bn.forward(&x, Mode::Eval);
        let gi = bn.backward(&Tensor::ones(&[1, 2, 2, 2]));
        // dx = gamma / sqrt(var+eps): 1/2 for ch0, 1/0.5=2 for ch1.
        assert!((gi.data()[0] - 0.5).abs() < 1e-3);
        assert!((gi.data()[4] - 2.0).abs() < 1e-2);
    }
}
