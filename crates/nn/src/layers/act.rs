//! Activation layers: ReLU, Sigmoid, SiLU (swish).

use crate::layer::{Layer, Mode, ParamSlot};
use usb_tensor::{Tape, Tensor, Workspace};

/// Elementwise map into a workspace buffer: the allocation-free counterpart
/// of [`Tensor::map`], applying the *same* scalar function so the results
/// are bit-identical to the forward path.
fn map_into(x: &Tensor, ws: &mut Workspace, f: impl Fn(f32) -> f32) -> Tensor {
    let mut out = ws.take_dirty(x.len());
    for (o, &v) in out.iter_mut().zip(x.data()) {
        *o = f(v);
    }
    Tensor::from_vec(out, x.shape())
}

/// Elementwise two-input map into a workspace buffer: the tape-route
/// counterpart of [`Tensor::zip_map`] over `(grad, recorded activation)`
/// pairs, applying the *same* scalar function as the layer's `backward`
/// so gradients are bit-identical.
fn zip_grad_into(
    grad_out: &Tensor,
    recorded: &[f32],
    ws: &mut Workspace,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    assert_eq!(
        grad_out.len(),
        recorded.len(),
        "activation grad: grad length does not match the recorded frame"
    );
    let mut out = ws.take_dirty(grad_out.len());
    for ((o, &g), &v) in out.iter_mut().zip(grad_out.data()).zip(recorded) {
        *o = f(g, v);
    }
    Tensor::from_vec(out, grad_out.shape())
}

/// Rectified linear unit `max(0, x)`.
#[derive(Debug, Default)]
pub struct ReLU {
    cached_input: Option<Tensor>,
}

impl Clone for ReLU {
    /// Stateless apart from the transient forward cache, which a clone
    /// starts without (see [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        ReLU::default()
    }
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(x.clone());
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("ReLU::backward before forward");
        grad_out.zip_map(x, |g, xv| if xv > 0.0 { g } else { 0.0 })
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        map_into(x, ws, |v| v.max(0.0))
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        tape.push().vals.extend_from_slice(x.data());
        map_into(x, ws, |v| v.max(0.0))
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        // Same scalar gate as `backward`'s zip_map, over the recorded input.
        let gi = zip_grad_into(
            grad_out,
            &frame.vals,
            ws,
            |g, xv| {
                if xv > 0.0 {
                    g
                } else {
                    0.0
                }
            },
        );
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid `1/(1+e^{-x})`.
#[derive(Debug, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Clone for Sigmoid {
    /// Stateless apart from the transient forward cache, which a clone
    /// starts without (see [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        Sigmoid::default()
    }
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

/// Scalar logistic sigmoid used by several layers and losses.
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let y = x.map(sigmoid_scalar);
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("Sigmoid::backward before forward");
        grad_out.zip_map(y, |g, s| g * s * (1.0 - s))
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        map_into(x, ws, sigmoid_scalar)
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        // Like `forward`, the *output* is what the gradient needs.
        let y = map_into(x, ws, sigmoid_scalar);
        tape.push().vals.extend_from_slice(y.data());
        y
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        let gi = zip_grad_into(grad_out, &frame.vals, ws, |g, s| g * s * (1.0 - s));
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// SiLU / swish activation `x · sigmoid(x)`, the nonlinearity used by
/// EfficientNet.
#[derive(Debug, Default)]
pub struct SiLU {
    cached_input: Option<Tensor>,
}

impl Clone for SiLU {
    /// Stateless apart from the transient forward cache, which a clone
    /// starts without (see [`Layer::clone_box`]).
    fn clone(&self) -> Self {
        SiLU::default()
    }
}

impl SiLU {
    /// Creates a SiLU layer.
    pub fn new() -> Self {
        SiLU::default()
    }
}

impl Layer for SiLU {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        self.cached_input = Some(x.clone());
        x.map(|v| v * sigmoid_scalar(v))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("SiLU::backward before forward");
        grad_out.zip_map(x, |g, v| {
            let s = sigmoid_scalar(v);
            g * (s + v * s * (1.0 - s))
        })
    }

    fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        map_into(x, ws, |v| v * sigmoid_scalar(v))
    }

    fn infer_recording(&self, x: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        tape.push().vals.extend_from_slice(x.data());
        map_into(x, ws, |v| v * sigmoid_scalar(v))
    }

    fn grad(&self, grad_out: &Tensor, tape: &mut Tape, ws: &mut Workspace) -> Tensor {
        let frame = tape.pop();
        let gi = zip_grad_into(grad_out, &frame.vals, ws, |g, v| {
            let s = sigmoid_scalar(v);
            g * (s + v * s * (1.0 - s))
        });
        tape.recycle(frame);
        gi
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamSlot<'_>)) {}

    fn param_count(&self) -> usize {
        0 // no parameters
    }

    fn name(&self) -> &'static str {
        "silu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(layer: &mut dyn Layer, x: &Tensor) {
        let y = layer.forward(x, Mode::Train);
        let gi = layer.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for flat in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let num = (layer.forward(&xp, Mode::Train).sum()
                - layer.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!(
                (num - gi.data()[flat]).abs() < 1e-2,
                "{}: grad mismatch at {flat}: {num} vs {}",
                layer.name(),
                gi.data()[flat]
            );
        }
    }

    #[test]
    fn relu_values_and_grad() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0, -0.1], &[4]);
        let y = r.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.5, 2.0, 0.0]);
        let g = r.backward(&Tensor::ones(&[4]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-4.0, 0.0, 4.0, 100.0, -100.0], &[5]);
        let y = s.forward(&x, Mode::Eval);
        assert!(y.all_finite());
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        finite_diff(&mut s, &Tensor::from_vec(vec![-0.8, 0.2, 1.3], &[3]));
    }

    #[test]
    fn silu_matches_definition_and_grad() {
        let mut s = SiLU::new();
        let x = Tensor::from_vec(vec![1.0], &[1]);
        let y = s.forward(&x, Mode::Eval);
        assert!((y.data()[0] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-6);
        finite_diff(
            &mut s,
            &Tensor::from_vec(vec![-1.5, -0.2, 0.0, 0.7, 2.0], &[5]),
        );
    }
}
