//! Concrete layers: convolutions, linear, activations, normalisation,
//! pooling.

mod act;
mod conv;
mod linear;
mod norm;
mod pool;

pub use act::{ReLU, SiLU, Sigmoid};
pub use conv::{Conv2d, DepthwiseConv2d};
pub use linear::{Flatten, Linear};
pub use norm::BatchNorm2d;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
