//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the surface the Universal Soldier reproduction
//! needs: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait (`gen_range`, `gen_bool`, `gen`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed on every platform, which is all the
//! reproduction requires (the paper's experiments fix seeds everywhere).
//! Streams do **not** match upstream `rand`; only self-consistency and
//! statistical quality matter here.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for `StdRng`).
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a single `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value of `Self` from a half-open or inclusive range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Sample uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let v = lo as f64 + (hi as f64 - lo as f64) * unit_f64(rng);
                // Guard against rounding up to the excluded endpoint.
                if (v as $t) >= hi { lo } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                (lo as f64 + (hi as f64 - lo as f64) * unit_f64(rng)) as $t
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi - lo) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing extension trait, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// Draw a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            Self { s }
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&i));
            let s = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn unit_samples_cover_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
