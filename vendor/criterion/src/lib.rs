//! Offline shim for the subset of the `criterion` API used by this
//! workspace's benchmarks (`benches/substrate.rs`, `tables.rs`,
//! `figures.rs`).
//!
//! It provides [`Criterion`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's full statistical machinery it runs a short warm-up, takes
//! `sample_size` timed samples (each sized so one sample lasts roughly
//! `measurement_time / sample_size`), and prints median / min / max
//! per-iteration wall time. Good enough to compare hot-path changes
//! locally; not a statistics engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            filter,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total timed budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
            iters_done: 0,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Times the routine passed to [`Bencher::iter`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_done: u64,
}

impl Bencher {
    /// Benchmark `routine`, timing many invocations.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run untimed until the budget elapses, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so all samples together fill measurement_time.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (budget / per_iter.max(1e-9)).ceil().max(1.0) as u64;

        self.samples_ns.clear();
        self.iters_done = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
            self.iters_done += iters_per_sample;
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<48} (no measurement: Bencher::iter never called)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{id:<48} median {} (min {}, max {}, {} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.iters_done,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// `black_box` re-export for code that imports it from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $cfg:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running each group (no-op under `cargo test`'s `--test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes bench binaries with `--test`; there is
            // nothing to verify in a measurement shim, so exit cleanly.
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0, "routine was never invoked");
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
