//! Offline shim for the subset of the `proptest` API used by this
//! workspace's property tests.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * numeric range strategies (`0.0f32..1.0`, `1.0f64..100.0`, …),
//! * [`collection::vec`] with a fixed size or a `usize` range,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! sampled inputs via `Debug` and panics. Case generation is fully
//! deterministic — the per-test RNG is seeded from a hash of the test
//! name, so reruns explore the same inputs.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

#[doc(hidden)]
pub use rand as __rand;
use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Runner configuration (`with_cases` is the only knob this shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A source of random values for one property-test argument.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Debug + Copy,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Number of elements to generate: a fixed count or a `usize` range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — the proptest collection constructor.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Error raised by a failing `prop_assert!` (or a rejected `prop_assume!`).
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another input.
    Reject(String),
}

/// Result type each property body is wrapped into.
pub type TestCaseResult = Result<(), TestCaseError>;

#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, so every rerun of a test
    // explores the identical input sequence.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines `#[test]` functions that run their body against many sampled
/// inputs. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::__seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut ran: u32 = 0;
                let mut rejected: u32 = 0;
                while ran < config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Render inputs up front: the body may move them.
                    let mut inputs = ::std::string::String::new();
                    $(inputs.push_str(&::std::format!(
                        "\n    {} = {:?}", stringify!($arg), $arg));)+
                    let result: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(16).max(256),
                                "proptest {}: too many rejected cases", stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} falsified at case {}:\n  {}\n  inputs:{}",
                                stringify!($name), ran, msg, inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the failing inputs instead of unwinding directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first: `!(a < b)` on floats trips clippy::neg_cmp_op_on_partial_ord
        // in the *caller's* crate otherwise.
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
}

/// Reject the current case (resampled, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f32..1.0, n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vecs_obey_size(
            fixed in collection::vec(0.0f64..10.0, 7),
            ranged in collection::vec(-1.0f32..1.0, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((2..6).contains(&ranged.len()));
            for v in &fixed {
                prop_assert!((0.0..10.0).contains(v));
            }
        }

        #[test]
        fn assume_rejects_without_failing(v in 0.0f64..1.0) {
            prop_assume!(v > 0.2);
            prop_assert!(v > 0.1);
        }
    }

    #[test]
    fn seed_is_stable() {
        assert_eq!(crate::__seed_for("abc"), crate::__seed_for("abc"));
        assert_ne!(crate::__seed_for("abc"), crate::__seed_for("abd"));
    }
}
