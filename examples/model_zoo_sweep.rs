//! A miniature model-zoo sweep: one paper-style table row-group produced
//! end to end with the `usb-eval` grid (Table 5 setting, 2 models per case,
//! fast defense configs). The full reproduction lives in the `usb-repro`
//! binary; this example shows the library API behind it.
//!
//! The grid fans the victims of a case out over worker threads (defaulting
//! to the machine's available parallelism). USB's own per-class fan-out
//! collapses to inline while the grid level is active — nested auto-sized
//! pools run on the worker that spawned them rather than multiplying
//! threads. Pin the pool size with the `USB_THREADS` environment variable;
//! any value produces the identical report:
//!
//! ```text
//! cargo run --release --example model_zoo_sweep
//! USB_THREADS=1 cargo run --release --example model_zoo_sweep   # sequential
//! ```

use universal_soldier::eval::grid::{run_table, table5, DefenseSuite};
use universal_soldier::eval::{format_table, write_csv};
use universal_soldier::nn::models::network_clone_count;
use universal_soldier::tensor::par;

fn main() {
    let spec = table5();
    println!(
        "running {} with 2 models/case (fast configs, {} worker threads)...",
        spec.id,
        par::worker_threads()
    );
    let t0 = std::time::Instant::now();
    let suite = DefenseSuite::fast();
    // Victim training legitimately builds models; inspection must not copy
    // them. The whole sweep — training, per-class fan-out, ASR scoring —
    // goes through the shared-`&Network` infer/tape routes, so the clone
    // counter stays exactly where it started.
    let clones_before = network_clone_count();
    let report = run_table(&spec, 2, &suite, |line| println!("{line}"));
    let clones = network_clone_count() - clones_before;
    print!("\n{}", format_table(&report));
    println!("wall time: {:.1}s", t0.elapsed().as_secs_f64());
    println!("network clones made by the sweep: {clones}");
    assert_eq!(clones, 0, "the sweep must share victims by reference");
    let path = std::path::Path::new("target/repro/example_sweep.csv");
    match write_csv(&report, path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
