//! A miniature model-zoo sweep: one paper-style table row-group produced
//! end to end with the `usb-eval` grid (Table 5 setting, 2 models per case,
//! fast defense configs). The full reproduction lives in the `usb-repro`
//! binary; this example shows the library API behind it.
//!
//! ```text
//! cargo run --release --example model_zoo_sweep
//! ```

use universal_soldier::eval::grid::{run_table, table5, DefenseSuite};
use universal_soldier::eval::{format_table, write_csv};

fn main() {
    let spec = table5();
    println!("running {} with 2 models/case (fast configs)...", spec.id);
    let suite = DefenseSuite::fast();
    let report = run_table(&spec, 2, &suite, |line| println!("{line}"));
    print!("\n{}", format_table(&report));
    let path = std::path::Path::new("target/repro/example_sweep.csv");
    match write_csv(&report, path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
