//! Quickstart: train a BadNet-backdoored victim on a synthetic CIFAR-10-like
//! task, then let USB reverse-engineer the trigger and identify the target
//! class.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::prelude::*;
use universal_soldier::usb::viz::ascii_art;

fn main() {
    // 1. A synthetic stand-in for CIFAR-10 (see usb-data docs for why this
    //    preserves the detection problem), shrunk for CPU speed.
    let data = SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(100)
        .generate(7);

    // 2. The adversary: BadNet with a 2x2 checkerboard trigger at a random
    //    position, all-to-one toward class 0.
    let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
    let attack = BadNet::new(2, 0, 0.15);
    println!("training backdoored victim (ResNet-18, ~20 epochs on CPU)...");
    let victim = attack.execute(&data, arch, TrainConfig::new(20), 7);
    println!(
        "victim ready: clean accuracy {:.1}%, attack success rate {:.1}%",
        victim.clean_accuracy * 100.0,
        victim.asr() * 100.0
    );

    // 3. The defender: USB sees only the model and 48 clean samples.
    let mut rng = StdRng::seed_from_u64(0);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    println!("running USB (targeted UAP per class + Alg. 2 refinement)...");
    let usb = UsbDetector::new(UsbConfig::standard());
    let outcome = usb.inspect(&victim.model, &clean_x, &mut rng);

    // 4. The verdict.
    println!("\nper-class reversed-trigger L1 norms:");
    for c in &outcome.per_class {
        println!(
            "  class {}: L1 {:>7.2}  (anomaly index {:.2}, trigger works on {:.0}% of data){}",
            c.class,
            c.l1_norm,
            outcome.anomaly_indices[c.class],
            c.attack_success * 100.0,
            if outcome.flagged.contains(&c.class) {
                "  <-- FLAGGED"
            } else {
                ""
            }
        );
    }
    println!(
        "\nmodel is {}",
        if outcome.is_backdoored() {
            "BACKDOORED"
        } else {
            "clean"
        }
    );
    if let Some(&t) = outcome.flagged.first() {
        println!(
            "suspected target class: {t} (ground truth: {:?})",
            victim.target()
        );
        println!("reversed mask:\n{}", ascii_art(&outcome.per_class[t].mask));
    }
}
