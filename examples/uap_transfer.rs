//! Paper §4.4: "the UAP can be used for different models with similar
//! architecture — we only need to generate it once."
//!
//! Generates the targeted UAP on model A, then runs only Alg. 2 refinement
//! on model B, comparing wall-clock and detection quality against the full
//! per-model pipeline.
//!
//! ```text
//! cargo run --release --example uap_transfer
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use universal_soldier::prelude::*;

fn main() {
    let data = SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(100)
        .generate(31);
    let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
    let attack = BadNet::new(2, 2, 0.15);

    println!("training two victims with the same backdoor, different seeds...");
    let a = attack.execute(&data, arch, TrainConfig::new(20), 41);
    let b = attack.execute(&data, arch, TrainConfig::new(20), 42);
    println!("A: asr {:.2} | B: asr {:.2}", a.asr(), b.asr());

    let mut rng = StdRng::seed_from_u64(1);
    let (x, _) = data.clean_subset(48, &mut rng);
    let target = 2;

    // Full pipeline on B (Alg. 1 + Alg. 2).
    let t0 = Instant::now();
    let uap_b = targeted_uap(&b.model, &x, target, UapConfig::default());
    let full_refined = refine_uap(
        &b.model,
        &x,
        target,
        &uap_b.perturbation,
        RefineConfig::standard(),
    );
    let t_full = t0.elapsed();

    // Transfer: UAP generated once on A, refinement only on B.
    let uap_a = targeted_uap(&a.model, &x, target, UapConfig::default());
    let t0 = Instant::now();
    let transferred = transfer_uap(
        &b.model,
        &x,
        target,
        &uap_a.perturbation,
        RefineConfig::standard(),
    );
    let t_transfer = t0.elapsed();

    println!(
        "\nfull pipeline on B : {t_full:?}, refined success {:.2}, mask L1 {:.2}",
        full_refined.success_rate,
        full_refined.mask_l1()
    );
    println!(
        "transfer (A -> B)  : {t_transfer:?}, raw UAP success {:.2}, refined success {:.2}, mask L1 {:.2}",
        transferred.raw_transfer_success,
        transferred.refined.success_rate,
        transferred.refined.mask_l1()
    );
    println!(
        "\nspeedup from skipping Alg. 1: {:.1}x",
        t_full.as_secs_f64() / t_transfer.as_secs_f64().max(1e-9)
    );
}
