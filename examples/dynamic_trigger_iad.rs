//! The paper's Table 3 story: NC-style defenses cannot reverse an
//! Input-Aware Dynamic (IAD) trigger — it is input-specific and spans the
//! whole image — while USB's UAP-seeded search still finds the shortcut.
//!
//! ```text
//! cargo run --release --example dynamic_trigger_iad
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use universal_soldier::prelude::*;

fn main() {
    let data = SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(100)
        .generate(23);
    let arch = Architecture::new(ModelKind::Vgg16, (3, 12, 12), 10).with_width(6);

    println!("training IAD victim (generator + classifier jointly)...");
    let attack = IadAttack::new(6);
    let mut victim = attack.execute(&data, arch, TrainConfig::new(20), 5);
    println!(
        "victim: clean acc {:.2}, asr {:.2} (full-image input-specific trigger)",
        victim.clean_accuracy,
        victim.asr()
    );

    // Demonstrate input-awareness: patterns for two inputs differ.
    if let GroundTruth::Backdoored {
        trigger: InjectedTrigger::Dynamic(generator),
        ..
    } = &mut victim.ground_truth
    {
        let pair = Tensor::stack(&[
            data.test_images.index_axis0(0),
            data.test_images.index_axis0(1),
        ]);
        let patterns = generator.generate(&pair);
        let diff = patterns
            .index_axis0(0)
            .sub(&patterns.index_axis0(1))
            .l1_norm();
        println!("pattern L1 difference across two inputs: {diff:.2} (input-aware)");
    }

    let mut rng = StdRng::seed_from_u64(9);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let nc = NeuralCleanse::new(NcConfig::standard());
    let usb = UsbDetector::new(UsbConfig::standard());

    println!("\nNC inspecting...");
    let nc_out = nc.inspect(&victim.model, &clean_x, &mut rng);
    println!(
        "NC   : called {:<10} flagged {:?}",
        if nc_out.is_backdoored() {
            "BACKDOORED"
        } else {
            "clean"
        },
        nc_out.flagged
    );

    println!("USB inspecting...");
    let usb_out = usb.inspect(&victim.model, &clean_x, &mut rng);
    println!(
        "USB  : called {:<10} flagged {:?} (true target {:?})",
        if usb_out.is_backdoored() {
            "BACKDOORED"
        } else {
            "clean"
        },
        usb_out.flagged,
        victim.target()
    );

    println!("\nper-class norms (NC vs USB):");
    for t in 0..10 {
        println!(
            "  class {t}: NC {:>8.2}   USB {:>8.2}",
            nc_out.per_class[t].l1_norm, usb_out.per_class[t].l1_norm
        );
    }
}
