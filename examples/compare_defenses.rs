//! Head-to-head: Neural Cleanse vs TABOR vs USB vs ULP on one backdoored
//! and one clean victim — a one-model slice of the paper's Table 1.
//!
//! ```text
//! cargo run --release --example compare_defenses
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use universal_soldier::prelude::*;

fn report(name: &str, outcome: &DetectionOutcome, truth: &[usize], seconds: f64) {
    let verdict = score_outcome(outcome, truth);
    println!(
        "  {name:<6} called {:<10} flagged {:?} (reported L1 {:.2}, {:.1}s) -> {}",
        if verdict.called_backdoored {
            "BACKDOORED"
        } else {
            "clean"
        },
        outcome.flagged,
        outcome.reported_l1(),
        seconds,
        match verdict.target_call {
            TargetClassCall::Correct => "correct target",
            TargetClassCall::CorrectSet => "correct set",
            TargetClassCall::Wrong => "WRONG target",
            TargetClassCall::NotApplicable =>
                if verdict.model_detection_correct {
                    "correct"
                } else {
                    "INCORRECT"
                },
        }
    );
}

fn main() {
    let spec = SyntheticSpec::cifar10()
        .with_size(12)
        .with_train_size(400)
        .with_test_size(100);
    let arch = Architecture::new(ModelKind::ResNet18, (3, 12, 12), 10).with_width(4);
    let attack = BadNet::new(2, 4, 0.15);
    let tc = TrainConfig::new(20);

    // Victims memoize under target/fixtures/ — the first run trains them,
    // later runs load bit-exact bundles (see PERSISTENCE.md).
    println!("fetching one backdoored and one clean victim (cached after the first run)...");
    let bd_fixture =
        FixtureSpec::new("example-compare-badnet", spec.clone(), 11, 1).with_config(&[
            &format!("{arch:?}"),
            &format!("{attack:?}"),
            &format!("{tc:?}"),
        ]);
    let (data, backdoored) = cached_victim(&bd_fixture, |data| attack.execute(data, arch, tc, 1));
    let clean_fixture = FixtureSpec::new("example-compare-clean", spec, 11, 2).with_config(&[
        &format!("{arch:?}"),
        "clean",
        &format!("{tc:?}"),
    ]);
    let (_, clean) = cached_victim(&clean_fixture, |data| train_clean_victim(data, arch, tc, 2));
    println!(
        "backdoored: acc {:.2} asr {:.2} | clean: acc {:.2}",
        backdoored.clean_accuracy,
        backdoored.asr(),
        clean.clean_accuracy
    );

    let mut rng = StdRng::seed_from_u64(3);
    let (clean_x, _) = data.clean_subset(48, &mut rng);
    let nc = NeuralCleanse::new(NcConfig::standard());
    let tabor = Tabor::new(TaborConfig::standard());
    let usb = UsbDetector::new(UsbConfig::standard());
    let ulp = Ulp::new(UlpConfig::standard());
    // ULP last: it never draws from the shared rng, so the NC/TABOR/USB
    // streams stay identical to the three-defense comparison.
    let suite: [(&str, &dyn Defense); 4] =
        [("NC", &nc), ("TABOR", &tabor), ("USB", &usb), ("ULP", &ulp)];

    println!(
        "\n--- backdoored victim (true target: {:?}) ---",
        backdoored.target()
    );
    for (name, defense) in suite {
        let t0 = Instant::now();
        let outcome = defense.inspect(&backdoored.model, &clean_x, &mut rng);
        report(
            name,
            &outcome,
            &backdoored.targets(),
            t0.elapsed().as_secs_f64(),
        );
    }

    println!("\n--- clean victim ---");
    for (name, defense) in suite {
        let t0 = Instant::now();
        let outcome = defense.inspect(&clean.model, &clean_x, &mut rng);
        report(name, &outcome, &[], t0.elapsed().as_secs_f64());
    }
}
